//! Skeleton expansion: typed Skipper-ML → process network.
//!
//! "The resulting annotated abstract syntax tree is then expanded into a
//! (target-independent) parallel process network by instantiating each
//! skeleton PNT" (paper §3). The supported program shape is the one the
//! paper uses (and SKiPPER-I enforces): a top-level
//!
//! ```text
//! let main = itermem <inp> <loop> <out> <z0> <x>;;
//! ```
//!
//! whose loop function takes a `(state, input)` tuple and whose body is a
//! sequence of `let` bindings, each applying an external sequential
//! function or a skeleton (`df`, `tf`, `scm`) to previously bound
//! variables and configuration constants. Skeleton nesting is rejected
//! with a diagnostic, as in SKiPPER-I ("their skeletons can be freely
//! nested, ours not" — §5).

use crate::ast::{Expr, ExprKind, Pattern, Program, TopLet};
use crate::diag::{Diagnostic, Stage};
use crate::types::{check_program, Type, TypeEnv};
use skipper_net::dtype::DataType;
use skipper_net::graph::{NodeId, NodeKind, ProcessNetwork};
use skipper_net::pnt::{expand_df, expand_scm, DfTypes, FarmHandles, FarmShape, ScmTypes};
use std::collections::HashMap;

/// A farm created during expansion.
#[derive(Debug, Clone)]
pub struct FarmInfo {
    /// Skeleton instance id in the network.
    pub instance: usize,
    /// Expanded node handles.
    pub handles: FarmHandles,
    /// Name of the top-level binding supplying the initial accumulator
    /// (the paper's `empty_list`).
    pub init_name: String,
}

/// The result of expanding a program.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The process network (validated, acyclic modulo the memory edge).
    pub net: ProcessNetwork,
    /// The stream input node (wraps the paper's `read_img`).
    pub input: NodeId,
    /// The stream output node (wraps `display_marks`).
    pub output: NodeId,
    /// The `MEM` node holding the tracker state.
    pub mem: NodeId,
    /// Name of the binding supplying the initial state (the paper's `s0`).
    pub state_init_name: String,
    /// Farms instantiated inside the loop.
    pub farms: Vec<FarmInfo>,
}

/// Converts an inferred type to a network edge type.
pub fn to_dtype(t: &Type) -> DataType {
    match t {
        Type::Con(c) => match c.as_str() {
            "int" => DataType::Int,
            "float" => DataType::Float,
            "bool" => DataType::Bool,
            "string" => DataType::Str,
            "unit" => DataType::Unit,
            "image" => DataType::Image,
            other => DataType::named(other),
        },
        Type::List(x) => DataType::list(to_dtype(x)),
        Type::Tuple(xs) => DataType::Tuple(xs.iter().map(to_dtype).collect()),
        Type::Var(_) => DataType::named("'poly"),
        Type::Fun(_, _) => DataType::named("<fun>"),
    }
}

/// A dataflow source: node, output port and value type.
#[derive(Debug, Clone)]
struct Source {
    node: NodeId,
    port: usize,
    ty: Type,
}

const SKELETON_NAMES: [&str; 4] = ["df", "tf", "scm", "itermem"];

/// Expands `program` (already parseable; types are checked here) into a
/// process network, instantiating farms with `shape`.
///
/// # Errors
///
/// Returns a located diagnostic for type errors, unsupported program
/// shapes, or skeleton nesting.
pub fn expand_program(
    env: &TypeEnv,
    program: &Program,
    shape: FarmShape,
) -> Result<Expansion, Diagnostic> {
    // 1. Type check (also gives us the loop's concrete state type).
    let types = check_program(env, program)?;

    // 2. Integer configuration constants from top-level bindings.
    let mut consts: HashMap<String, i64> = HashMap::new();
    for item in &program.items {
        if item.params.is_empty() {
            if let ExprKind::Int(i) = item.body.kind {
                consts.insert(item.name.clone(), i);
            }
        }
    }

    // 3. Locate `main = itermem inp loop out z0 x`.
    let main = program
        .item("main")
        .ok_or_else(|| Diagnostic::global(Stage::Expand, "program has no `main` binding"))?;
    let (head, args) = main.body.uncurry_app();
    let head_name = var_name(head)
        .ok_or_else(|| Diagnostic::new(Stage::Expand, "main must apply itermem", main.body.span))?;
    if head_name != "itermem" || args.len() != 5 {
        return Err(Diagnostic::new(
            Stage::Expand,
            "main must be `itermem inp loop out z x`",
            main.body.span,
        ));
    }
    let inp_name = var_name(args[0]).ok_or_else(|| {
        Diagnostic::new(
            Stage::Expand,
            "itermem input must be a function name",
            args[0].span,
        )
    })?;
    let loop_name = var_name(args[1]).ok_or_else(|| {
        Diagnostic::new(
            Stage::Expand,
            "itermem loop must be a top-level function",
            args[1].span,
        )
    })?;
    let out_name = var_name(args[2]).ok_or_else(|| {
        Diagnostic::new(
            Stage::Expand,
            "itermem output must be a function name",
            args[2].span,
        )
    })?;
    let state_init_name = var_name(args[3]).unwrap_or("state0").to_string();
    let loop_item = program.item(loop_name).ok_or_else(|| {
        Diagnostic::new(
            Stage::Expand,
            format!("loop function `{loop_name}` is not a top-level binding"),
            args[1].span,
        )
    })?;

    // 4. The loop's inferred type fixes the state/input/output types.
    let loop_ty = &types
        .scheme_of(loop_name)
        .ok_or_else(|| Diagnostic::global(Stage::Expand, "loop has no inferred type"))?
        .ty;
    let (state_ty, input_ty, ret_ty) = match loop_ty {
        Type::Fun(arg, ret) => match arg.as_ref() {
            Type::Tuple(parts) if parts.len() == 2 => {
                (parts[0].clone(), parts[1].clone(), (**ret).clone())
            }
            _ => {
                return Err(Diagnostic::new(
                    Stage::Expand,
                    format!("loop must take a (state, input) pair, has type {loop_ty}"),
                    loop_item.span,
                ))
            }
        },
        _ => {
            return Err(Diagnostic::new(
                Stage::Expand,
                format!("loop must be a function, has type {loop_ty}"),
                loop_item.span,
            ))
        }
    };
    let (ret0, ret1) = match &ret_ty {
        Type::Tuple(parts) if parts.len() == 2 => (parts[0].clone(), parts[1].clone()),
        _ => {
            return Err(Diagnostic::new(
                Stage::Expand,
                format!("loop must return a (state', output) pair, returns {ret_ty}"),
                loop_item.span,
            ))
        }
    };
    // Which component of the result is the next state?
    let (state_port, out_port) = if ret0 == state_ty {
        (0usize, 1usize)
    } else if ret1 == state_ty {
        (1, 0)
    } else {
        return Err(Diagnostic::new(
            Stage::Expand,
            format!("neither component of {ret_ty} matches the state type {state_ty}"),
            loop_item.span,
        ));
    };
    let y_ty = if out_port == 0 {
        ret0.clone()
    } else {
        ret1.clone()
    };

    // 5. Build the network skeleton: input, mem, output nodes.
    let mut ex = ExpandCtx {
        env,
        consts,
        net: ProcessNetwork::new(program.item("main").map_or("main", |m| &m.name)),
        farms: Vec::new(),
        shape,
        sources: HashMap::new(),
    };
    let inst = ex.net.fresh_instance();
    let input = ex.net.add_instance_node(
        NodeKind::Input(inp_name.to_string()),
        format!("inp[{inp_name}]"),
        inst,
    );
    let output = ex.net.add_instance_node(
        NodeKind::Output(out_name.to_string()),
        format!("out[{out_name}]"),
        inst,
    );
    let mem = ex.net.add_instance_node(NodeKind::Mem, "mem[state]", inst);

    // 6. Bind the loop's (state, input) pattern.
    let (state_var, input_var) = loop_params(loop_item)?;
    ex.sources.insert(
        state_var.to_string(),
        Source {
            node: mem,
            port: 0,
            ty: state_ty.clone(),
        },
    );
    ex.sources.insert(
        input_var.to_string(),
        Source {
            node: input,
            port: 0,
            ty: input_ty.clone(),
        },
    );
    // Mem and Input feed the loop body through ordinary data edges created
    // lazily when their variables are used.

    // 7. Walk the loop body.
    let exit = ex.walk(&loop_item.body)?;
    if exit.port != 0 {
        return Err(Diagnostic::new(
            Stage::Expand,
            "loop result must be the whole value of its final application",
            loop_item.body.span,
        ));
    }
    // 8. Close the loop: output edge + memory edge.
    ex.net
        .add_data_edge(exit.node, out_port, output, 0, to_dtype(&y_ty))
        .expect("nodes exist");
    ex.net
        .add_memory_edge(exit.node, state_port, mem, 0, to_dtype(&state_ty))
        .expect("nodes exist");

    Ok(Expansion {
        net: ex.net,
        input,
        output,
        mem,
        state_init_name,
        farms: ex.farms,
    })
}

fn var_name(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Var(v) => Some(v),
        _ => None,
    }
}

/// Extracts the `(state, input)` variable names of the loop function.
fn loop_params(item: &TopLet) -> Result<(&str, &str), Diagnostic> {
    let bad = || {
        Diagnostic::new(
            Stage::Expand,
            "loop must be declared as `let loop (state, input) = …`",
            item.span,
        )
    };
    if item.params.len() != 1 {
        return Err(bad());
    }
    match &item.params[0] {
        Pattern::Tuple(ps, _) if ps.len() == 2 => match (&ps[0], &ps[1]) {
            (Pattern::Var(a, _), Pattern::Var(b, _)) => Ok((a, b)),
            _ => Err(bad()),
        },
        _ => Err(bad()),
    }
}

struct ExpandCtx<'a> {
    env: &'a TypeEnv,
    consts: HashMap<String, i64>,
    net: ProcessNetwork,
    farms: Vec<FarmInfo>,
    shape: FarmShape,
    sources: HashMap<String, Source>,
}

impl ExpandCtx<'_> {
    /// Walks a let-chain, returning the source of the final expression.
    fn walk(&mut self, body: &Expr) -> Result<Source, Diagnostic> {
        match &body.kind {
            ExprKind::Let { pat, value, body } => {
                let src = self.emit_binding(value)?;
                self.bind_pattern(pat, src)?;
                self.walk(body)
            }
            ExprKind::Var(v) => self.sources.get(v.as_str()).cloned().ok_or_else(|| {
                Diagnostic::new(
                    Stage::Expand,
                    format!("`{v}` is not a dataflow value"),
                    body.span,
                )
            }),
            ExprKind::App(_, _) => self.emit_binding(body),
            _ => Err(Diagnostic::new(
                Stage::Expand,
                "loop body must be a chain of lets ending in an application",
                body.span,
            )),
        }
    }

    fn bind_pattern(&mut self, pat: &Pattern, src: Source) -> Result<(), Diagnostic> {
        match pat {
            Pattern::Var(v, _) => {
                self.sources.insert(v.clone(), src);
                Ok(())
            }
            Pattern::Tuple(ps, span) => {
                let parts = match &src.ty {
                    Type::Tuple(parts) if parts.len() == ps.len() => parts.clone(),
                    other => {
                        return Err(Diagnostic::new(
                            Stage::Expand,
                            format!("tuple pattern cannot destructure {other}"),
                            *span,
                        ))
                    }
                };
                for (i, (p, t)) in ps.iter().zip(parts).enumerate() {
                    if let Pattern::Var(v, _) = p {
                        self.sources.insert(
                            v.clone(),
                            Source {
                                node: src.node,
                                port: src.port + i,
                                ty: t,
                            },
                        );
                    }
                }
                Ok(())
            }
            Pattern::Wildcard(_) | Pattern::Unit(_) => Ok(()),
        }
    }

    /// Emits the node(s) for one binding value (an application spine).
    fn emit_binding(&mut self, value: &Expr) -> Result<Source, Diagnostic> {
        let (head, args) = value.uncurry_app();
        let name = var_name(head).ok_or_else(|| {
            Diagnostic::new(
                Stage::Expand,
                "bindings must apply a named function or skeleton",
                value.span,
            )
        })?;
        match name {
            "df" | "tf" => self.emit_farm(name, &args, value),
            "scm" => self.emit_scm(&args, value),
            "itermem" => Err(Diagnostic::new(
                Stage::Expand,
                "itermem cannot appear inside the loop (SKiPPER-I skeletons do not nest)",
                value.span,
            )),
            _ => self.emit_user_fn(name, &args, value),
        }
    }

    /// Looks up a function's declared signature as a vector of curried
    /// argument types plus the result.
    fn signature_of(&self, name: &str, at: &Expr) -> Result<(Vec<Type>, Type), Diagnostic> {
        let scheme = self.env.lookup(name).ok_or_else(|| {
            Diagnostic::new(
                Stage::Expand,
                format!("`{name}` is not a declared sequential function"),
                at.span,
            )
        })?;
        let mut args = Vec::new();
        let mut t = scheme.ty.clone();
        while let Type::Fun(a, b) = t {
            args.push(*a);
            t = *b;
        }
        Ok((args, t))
    }

    /// Requires that `name` is not itself a skeleton (nesting check).
    fn reject_skeleton_arg<'e>(&self, e: &'e Expr) -> Result<&'e str, Diagnostic> {
        let n = var_name(e).ok_or_else(|| {
            Diagnostic::new(
                Stage::Expand,
                "skeleton function arguments must be named sequential functions",
                e.span,
            )
        })?;
        if SKELETON_NAMES.contains(&n) {
            return Err(Diagnostic::new(
                Stage::Expand,
                "SKiPPER-I skeletons cannot be nested",
                e.span,
            ));
        }
        Ok(n)
    }

    fn const_int(&self, e: &Expr) -> Result<usize, Diagnostic> {
        match &e.kind {
            ExprKind::Int(i) if *i > 0 => Ok(*i as usize),
            ExprKind::Var(v) => match self.consts.get(v.as_str()) {
                Some(&i) if i > 0 => Ok(i as usize),
                _ => Err(Diagnostic::new(
                    Stage::Expand,
                    format!("`{v}` must be a positive integer constant (degree of parallelism)"),
                    e.span,
                )),
            },
            _ => Err(Diagnostic::new(
                Stage::Expand,
                "degree of parallelism must be a positive integer constant",
                e.span,
            )),
        }
    }

    fn data_edge(&mut self, src: &Source, dst: NodeId, port: usize) {
        self.net
            .add_data_edge(src.node, src.port, dst, port, to_dtype(&src.ty))
            .expect("nodes exist");
    }

    fn emit_user_fn(
        &mut self,
        name: &str,
        args: &[&Expr],
        at: &Expr,
    ) -> Result<Source, Diagnostic> {
        let (arg_tys, ret) = self.signature_of(name, at)?;
        if args.len() != arg_tys.len() {
            return Err(Diagnostic::new(
                Stage::Expand,
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    arg_tys.len(),
                    args.len()
                ),
                at.span,
            ));
        }
        let node = self.net.add_node(NodeKind::UserFn(name.to_string()), name);
        let mut port = 0usize;
        for arg in args.iter() {
            match &arg.kind {
                // Configuration constants are baked into the registered
                // native function, not wired as dataflow.
                ExprKind::Int(_)
                | ExprKind::Float(_)
                | ExprKind::Bool(_)
                | ExprKind::Str(_)
                | ExprKind::Unit
                | ExprKind::Tuple(_) => {}
                ExprKind::Var(v) => {
                    if let Some(c) = self.consts.get(v.as_str()) {
                        let _ = c; // constant: baked, no edge
                    } else {
                        let src = self.sources.get(v.as_str()).cloned().ok_or_else(|| {
                            Diagnostic::new(
                                Stage::Expand,
                                format!("`{v}` is not a dataflow value"),
                                arg.span,
                            )
                        })?;
                        self.data_edge(&src, node, port);
                        port += 1;
                    }
                }
                _ => {
                    return Err(Diagnostic::new(
                        Stage::Expand,
                        "arguments must be variables or constants (A-normal form)",
                        arg.span,
                    ))
                }
            }
        }
        Ok(Source {
            node,
            port: 0,
            ty: ret,
        })
    }

    fn emit_farm(&mut self, which: &str, args: &[&Expr], at: &Expr) -> Result<Source, Diagnostic> {
        if args.len() != 5 {
            return Err(Diagnostic::new(
                Stage::Expand,
                format!("`{which}` takes 5 arguments"),
                at.span,
            ));
        }
        let n = self.const_int(args[0])?;
        let comp = self.reject_skeleton_arg(args[1])?.to_string();
        let acc = self.reject_skeleton_arg(args[2])?.to_string();
        let init_name = var_name(args[3]).unwrap_or("farm_init").to_string();
        let xs_name = var_name(args[4]).ok_or_else(|| {
            Diagnostic::new(Stage::Expand, "farm input must be a variable", args[4].span)
        })?;
        let xs = self.sources.get(xs_name).cloned().ok_or_else(|| {
            Diagnostic::new(
                Stage::Expand,
                format!("`{xs_name}` is not a dataflow value"),
                args[4].span,
            )
        })?;
        let (comp_args, comp_ret) = self.signature_of(&comp, args[1])?;
        let (_, acc_ret) = self.signature_of(&acc, args[2])?;
        let item_ty = comp_args.first().cloned().unwrap_or(Type::con("item"));
        let types = DfTypes {
            item: to_dtype(&item_ty),
            result: to_dtype(&comp_ret),
            acc: to_dtype(&acc_ret),
        };
        let handles = if which == "tf" {
            skipper_net::pnt::expand_tf(&mut self.net, n, &comp, &acc, types, self.shape)
        } else {
            expand_df(&mut self.net, n, &comp, &acc, types, self.shape)
        };
        self.data_edge(&xs, handles.master, 0);
        self.farms.push(FarmInfo {
            instance: handles.instance,
            handles: handles.clone(),
            init_name,
        });
        Ok(Source {
            node: handles.master,
            port: 0,
            ty: acc_ret,
        })
    }

    fn emit_scm(&mut self, args: &[&Expr], at: &Expr) -> Result<Source, Diagnostic> {
        if args.len() != 5 {
            return Err(Diagnostic::new(
                Stage::Expand,
                "`scm` takes 5 arguments",
                at.span,
            ));
        }
        let n = self.const_int(args[0])?;
        let split = self.reject_skeleton_arg(args[1])?.to_string();
        let comp = self.reject_skeleton_arg(args[2])?.to_string();
        let merge = self.reject_skeleton_arg(args[3])?.to_string();
        let x_name = var_name(args[4]).ok_or_else(|| {
            Diagnostic::new(Stage::Expand, "scm input must be a variable", args[4].span)
        })?;
        let x = self.sources.get(x_name).cloned().ok_or_else(|| {
            Diagnostic::new(
                Stage::Expand,
                format!("`{x_name}` is not a dataflow value"),
                args[4].span,
            )
        })?;
        let (split_args, split_ret) = self.signature_of(&split, args[1])?;
        let (_, comp_ret) = self.signature_of(&comp, args[2])?;
        let (_, merge_ret) = self.signature_of(&merge, args[3])?;
        let frag_ty = match &split_ret {
            Type::List(t) => (**t).clone(),
            other => other.clone(),
        };
        let types = ScmTypes {
            input: to_dtype(split_args.first().unwrap_or(&Type::con("input"))),
            fragment: to_dtype(&frag_ty),
            partial: to_dtype(&comp_ret),
            output: to_dtype(&merge_ret),
        };
        let handles = expand_scm(&mut self.net, n, &split, &comp, &merge, types);
        self.data_edge(&x, handles.split, 0);
        Ok(Source {
            node: handles.merge,
            port: 0,
            ty: merge_ret,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use skipper_net::validate::is_well_formed;

    fn tracker_env() -> TypeEnv {
        let mut env = TypeEnv::with_skeletons();
        for (name, sig) in [
            ("s0", "state"),
            ("read_img", "dims -> image"),
            ("get_windows", "int -> state -> image -> window list"),
            ("detect_mark", "window -> mark"),
            ("accum_marks", "mark list -> mark -> mark list"),
            ("empty_list", "mark list"),
            ("predict", "mark list -> state * marks_out"),
            ("display_marks", "marks_out -> unit"),
            ("dims512", "dims"),
        ] {
            env.declare(name, sig).unwrap();
        }
        env
    }

    fn tracker_src() -> &'static str {
        r#"
            let nproc = 8;;
            let loop (state, im) =
              let ws = get_windows nproc state im in
              let marks = df nproc detect_mark accum_marks empty_list ws in
              predict marks;;
            let main = itermem read_img loop display_marks s0 dims512;;
        "#
    }

    #[test]
    fn paper_tracker_expands_to_expected_network() {
        let prog = parse_program(tracker_src()).unwrap();
        let ex = expand_program(&tracker_env(), &prog, FarmShape::Star).unwrap();
        // Nodes: input + output + mem + get_windows + master + 8 workers +
        // predict = 14.
        assert_eq!(ex.net.len(), 14);
        assert_eq!(ex.farms.len(), 1);
        assert_eq!(ex.farms[0].handles.workers.len(), 8);
        assert_eq!(ex.farms[0].init_name, "empty_list");
        assert_eq!(ex.state_init_name, "s0");
        assert!(
            is_well_formed(&ex.net),
            "{:?}",
            skipper_net::validate::validate(&ex.net)
        );
        // The itermem loop is closed by a *memory* edge (invisible to
        // topo_order), but the embedded df farm is cyclic by design:
        // master <-> worker data edges both ways.
        assert!(ex.net.topo_order().is_err());
    }

    #[test]
    fn tracker_network_wiring() {
        let prog = parse_program(tracker_src()).unwrap();
        let ex = expand_program(&tracker_env(), &prog, FarmShape::Star).unwrap();
        let gw = ex
            .net
            .nodes_where(|k| k.function_name() == Some("get_windows"))
            .next()
            .unwrap();
        let master = ex
            .net
            .nodes_where(|k| matches!(k, NodeKind::Master(_)))
            .next()
            .unwrap();
        let predict = ex
            .net
            .nodes_where(|k| k.function_name() == Some("predict"))
            .next()
            .unwrap();
        // input + mem feed get_windows (nproc is a baked constant).
        assert_eq!(ex.net.predecessors(gw).len(), 2);
        assert!(ex.net.successors(gw).contains(&master));
        assert!(ex.net.successors(master).contains(&predict));
        // predict feeds the output AND the memory node.
        assert!(ex.net.successors(predict).contains(&ex.output));
        let mem_edges: Vec<_> = ex
            .net
            .edges()
            .iter()
            .filter(|e| e.kind == skipper_net::graph::EdgeKind::Memory)
            .collect();
        assert_eq!(mem_edges.len(), 1);
        assert_eq!(mem_edges[0].from, predict);
        assert_eq!(mem_edges[0].to, ex.mem);
        // predict's state component (port 0 per the declared signature
        // `mark list -> state * marks_out`) goes to memory.
        assert_eq!(mem_edges[0].from_port, 0);
    }

    #[test]
    fn ring_shape_adds_routers() {
        let prog = parse_program(tracker_src()).unwrap();
        let ex = expand_program(&tracker_env(), &prog, FarmShape::Ring).unwrap();
        let routers = ex
            .net
            .nodes_where(|k| matches!(k, NodeKind::RouterMw | NodeKind::RouterWm))
            .count();
        assert_eq!(routers, 16, "8 M->W + 8 W->M routers");
    }

    #[test]
    fn nested_skeleton_rejected() {
        let src = r#"
            let loop (state, im) =
              let r = df 4 (df 2 f g h) acc z im in
              done r;;
            let main = itermem read loop show s0 cfg;;
        "#;
        // Declarations irrelevant: nesting is detected syntactically before
        // signature lookup of the offending argument.
        let mut env = TypeEnv::with_skeletons();
        for (n, s) in [
            ("read", "cfg -> image"),
            ("show", "out -> unit"),
            ("s0", "st"),
            ("cfg", "cfg"),
            ("f", "a -> b"),
            ("g", "b -> c"),
            ("h", "c -> d"),
            ("acc", "z -> r -> z"),
            ("z", "z"),
            ("done", "z -> st * out"),
        ] {
            env.declare(n, s).unwrap();
        }
        let prog = parse_program(src).unwrap();
        let err = expand_program(&env, &prog, FarmShape::Star).unwrap_err();
        assert!(
            err.message.contains("nest") || err.message.contains("mismatch"),
            "{}",
            err.message
        );
    }

    #[test]
    fn missing_main_reported() {
        let prog = parse_program("let x = 1;;").unwrap();
        let err = expand_program(&TypeEnv::with_skeletons(), &prog, FarmShape::Star).unwrap_err();
        assert!(err.message.contains("no `main`"));
    }

    #[test]
    fn scm_inside_loop_expands() {
        let src = r#"
            let nproc = 4;;
            let loop (state, im) =
              let bands = scm nproc split_rows sobel merge_rows im in
              finish state bands;;
            let main = itermem grab loop show s0 cfg;;
        "#;
        let mut env = TypeEnv::with_skeletons();
        for (n, s) in [
            ("grab", "cfg -> image"),
            ("show", "out -> unit"),
            ("s0", "st"),
            ("cfg", "cfg"),
            ("split_rows", "image -> band list"),
            ("sobel", "band -> band"),
            ("merge_rows", "band list -> image"),
            ("finish", "st -> image -> st * out"),
        ] {
            env.declare(n, s).unwrap();
        }
        let prog = parse_program(src).unwrap();
        let ex = expand_program(&env, &prog, FarmShape::Star).unwrap();
        let splits = ex
            .net
            .nodes_where(|k| matches!(k, NodeKind::Split(_)))
            .count();
        assert_eq!(splits, 1);
        // input + output + mem + split + 4 comps + merge + finish = 10.
        assert_eq!(ex.net.len(), 10);
        assert!(is_well_formed(&ex.net));
    }

    #[test]
    fn swapped_state_position_is_a_type_error() {
        // Fig. 4's contract is loop : 'c * 'b -> 'c * 'd — the next state
        // comes FIRST in the result pair. A loop returning (output, state)
        // must be rejected by type checking against itermem's signature.
        let src = r#"
            let loop (state, im) =
              let r = work state im in
              r;;
            let main = itermem grab loop show s0 cfg;;
        "#;
        let mut env = TypeEnv::with_skeletons();
        for (n, s) in [
            ("grab", "cfg -> image"),
            ("show", "out -> unit"),
            ("s0", "st"),
            ("cfg", "cfg"),
            ("work", "st -> image -> out * st"),
        ] {
            env.declare(n, s).unwrap();
        }
        let prog = parse_program(src).unwrap();
        let err = expand_program(&env, &prog, FarmShape::Star).unwrap_err();
        assert!(err.message.contains("mismatch"), "{}", err.message);
    }

    #[test]
    fn dtype_conversion() {
        assert_eq!(to_dtype(&Type::int()), DataType::Int);
        assert_eq!(to_dtype(&Type::con("image")), DataType::Image);
        assert_eq!(
            to_dtype(&Type::list(Type::con("mark"))),
            DataType::list(DataType::named("mark"))
        );
        assert_eq!(
            to_dtype(&Type::Tuple(vec![Type::int(), Type::bool()])),
            DataType::Tuple(vec![DataType::Int, DataType::Bool])
        );
    }
}
