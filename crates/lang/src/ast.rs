//! Abstract syntax of Skipper-ML.
//!
//! The language is the restricted Caml subset the paper's programs are
//! written in: top-level `let` bindings terminated by `;;`, first-class
//! (but rank-1) functions, tuples, lists, conditionals and arithmetic. The
//! skeletons `scm`, `df`, `tf` and `itermem` are ordinary identifiers bound
//! in the initial typing environment.

use crate::diag::Span;
use std::fmt;

/// Binding patterns (variables, tuples, unit, wildcard).
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// `x`
    Var(String, Span),
    /// `(p1, p2, …)`
    Tuple(Vec<Pattern>, Span),
    /// `()`
    Unit(Span),
    /// `_`
    Wildcard(Span),
}

impl Pattern {
    /// The pattern's source span.
    pub fn span(&self) -> Span {
        match self {
            Pattern::Var(_, s) | Pattern::Tuple(_, s) | Pattern::Unit(s) | Pattern::Wildcard(s) => {
                *s
            }
        }
    }

    /// Variables bound by the pattern, in order.
    pub fn bound_vars(&self) -> Vec<&str> {
        match self {
            Pattern::Var(v, _) => vec![v.as_str()],
            Pattern::Tuple(ps, _) => ps.iter().flat_map(Pattern::bound_vars).collect(),
            Pattern::Unit(_) | Pattern::Wildcard(_) => Vec::new(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Expression syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Variable reference.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// `()`
    Unit,
    /// `(e1, e2, …)` with arity ≥ 2.
    Tuple(Vec<Expr>),
    /// `[e1; e2; …]`
    List(Vec<Expr>),
    /// Application `f x` (left-associative, curried).
    App(Box<Expr>, Box<Expr>),
    /// `fun p -> e`
    Lambda(Pattern, Box<Expr>),
    /// `let p = e1 in e2`
    Let {
        /// Bound pattern.
        pat: Pattern,
        /// Bound value.
        value: Box<Expr>,
        /// Continuation.
        body: Box<Expr>,
    },
    /// `if c then t else e`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
}

/// A located expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Syntax.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Peels a curried application into `(head, args)`; returns the
    /// expression itself with no args when it is not an application.
    pub fn uncurry_app(&self) -> (&Expr, Vec<&Expr>) {
        let mut head = self;
        let mut args = Vec::new();
        while let ExprKind::App(f, a) = &head.kind {
            args.push(a.as_ref());
            head = f;
        }
        args.reverse();
        (head, args)
    }
}

/// A top-level binding `let name p1 p2 … = body ;;`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopLet {
    /// Bound name.
    pub name: String,
    /// Curried parameters (sugar for nested lambdas).
    pub params: Vec<Pattern>,
    /// Right-hand side.
    pub body: Expr,
    /// Whole-item span.
    pub span: Span,
}

impl TopLet {
    /// The equivalent unsugared value (`fun p1 -> fun p2 -> … -> body`).
    pub fn as_lambda(&self) -> Expr {
        let mut e = self.body.clone();
        for p in self.params.iter().rev() {
            let span = self.span;
            e = Expr::new(ExprKind::Lambda(p.clone(), Box::new(e)), span);
        }
        e
    }
}

/// A whole source program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level bindings in order.
    pub items: Vec<TopLet>,
}

impl Program {
    /// The binding with the given name, if present.
    pub fn item(&self, name: &str) -> Option<&TopLet> {
        self.items.iter().find(|i| i.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(name: &str) -> Expr {
        Expr::new(ExprKind::Var(name.into()), Span::default())
    }

    #[test]
    fn uncurry_app_peels_spine() {
        // ((f a) b)
        let app = Expr::new(
            ExprKind::App(
                Box::new(Expr::new(
                    ExprKind::App(Box::new(var("f")), Box::new(var("a"))),
                    Span::default(),
                )),
                Box::new(var("b")),
            ),
            Span::default(),
        );
        let (head, args) = app.uncurry_app();
        assert_eq!(head, &var("f"));
        assert_eq!(args, vec![&var("a"), &var("b")]);
    }

    #[test]
    fn uncurry_non_app_is_empty() {
        let v = var("x");
        let (head, args) = v.uncurry_app();
        assert_eq!(head, &v);
        assert!(args.is_empty());
    }

    #[test]
    fn pattern_bound_vars_in_order() {
        let p = Pattern::Tuple(
            vec![
                Pattern::Var("a".into(), Span::default()),
                Pattern::Wildcard(Span::default()),
                Pattern::Tuple(
                    vec![
                        Pattern::Var("b".into(), Span::default()),
                        Pattern::Unit(Span::default()),
                    ],
                    Span::default(),
                ),
            ],
            Span::default(),
        );
        assert_eq!(p.bound_vars(), vec!["a", "b"]);
    }

    #[test]
    fn toplet_as_lambda_nests() {
        let item = TopLet {
            name: "f".into(),
            params: vec![
                Pattern::Var("x".into(), Span::default()),
                Pattern::Var("y".into(), Span::default()),
            ],
            body: var("x"),
            span: Span::default(),
        };
        let lam = item.as_lambda();
        match lam.kind {
            ExprKind::Lambda(Pattern::Var(ref x, _), ref inner) => {
                assert_eq!(x, "x");
                assert!(matches!(inner.kind, ExprKind::Lambda(_, _)));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }
}
