//! Recursive-descent parser for Skipper-ML.

use crate::ast::{BinOp, Expr, ExprKind, Pattern, Program, TopLet};
use crate::diag::{Diagnostic, Span, Stage};
use crate::token::{lex, Tok, Token};

/// Parses a whole program (a sequence of `let … ;;` items).
///
/// # Errors
///
/// Returns the first lexical or syntax error with its source span.
pub fn parse_program(source: &str) -> Result<Program, Diagnostic> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while p.peek() != &Tok::Eof {
        items.push(p.item()?);
    }
    Ok(Program { items })
}

/// Parses a single expression (useful for tests and the REPL-style API).
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse_expr(source: &str) -> Result<Expr, Diagnostic> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<Span, Diagnostic> {
        if self.peek() == &want {
            Ok(self.bump().span)
        } else {
            Err(Diagnostic::new(
                Stage::Parse,
                format!("expected `{want}`, found `{}`", self.peek()),
                self.span(),
            ))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.bump().span;
                Ok((s, sp))
            }
            other => Err(Diagnostic::new(
                Stage::Parse,
                format!("expected identifier, found `{other}`"),
                self.span(),
            )),
        }
    }

    /// `let name p* = expr ;;`
    fn item(&mut self) -> Result<TopLet, Diagnostic> {
        let start = self.expect(Tok::Let)?;
        let (name, _) = self.ident()?;
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::Eq) {
            params.push(self.simple_pattern()?);
        }
        self.expect(Tok::Eq)?;
        let body = self.expr()?;
        let end = self.expect(Tok::SemiSemi)?;
        Ok(TopLet {
            name,
            params,
            body,
            span: start.merge(end),
        })
    }

    /// A pattern without top-level commas: `x`, `_`, `()`, `(p, p, …)`.
    fn simple_pattern(&mut self) -> Result<Pattern, Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                let sp = self.bump().span;
                Ok(Pattern::Var(s, sp))
            }
            Tok::Underscore => {
                let sp = self.bump().span;
                Ok(Pattern::Wildcard(sp))
            }
            Tok::LParen => {
                let start = self.bump().span;
                if self.peek() == &Tok::RParen {
                    let end = self.bump().span;
                    return Ok(Pattern::Unit(start.merge(end)));
                }
                let p = self.tuple_pattern()?;
                let end = self.expect(Tok::RParen)?;
                Ok(match p {
                    Pattern::Tuple(ps, _) => Pattern::Tuple(ps, start.merge(end)),
                    other => other,
                })
            }
            other => Err(Diagnostic::new(
                Stage::Parse,
                format!("expected pattern, found `{other}`"),
                self.span(),
            )),
        }
    }

    /// A possibly comma-separated pattern (`z', y`).
    fn tuple_pattern(&mut self) -> Result<Pattern, Diagnostic> {
        let first = self.simple_pattern()?;
        if self.peek() != &Tok::Comma {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.peek() == &Tok::Comma {
            self.bump();
            parts.push(self.simple_pattern()?);
        }
        // `parts` holds `first` plus one pattern per comma, so both ends
        // exist; spell the merge over the same element when there is one.
        let span = match parts.last() {
            Some(last) => parts[0].span().merge(last.span()),
            None => self.span(),
        };
        Ok(Pattern::Tuple(parts, span))
    }

    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek() {
            Tok::Let => {
                let start = self.bump().span;
                let pat = self.tuple_pattern()?;
                self.expect(Tok::Eq)?;
                let value = self.expr()?;
                self.expect(Tok::In)?;
                let body = self.expr()?;
                let span = start.merge(body.span);
                Ok(Expr::new(
                    ExprKind::Let {
                        pat,
                        value: Box::new(value),
                        body: Box::new(body),
                    },
                    span,
                ))
            }
            Tok::Fun => {
                let start = self.bump().span;
                let mut params = vec![self.simple_pattern()?];
                while self.peek() != &Tok::Arrow {
                    params.push(self.simple_pattern()?);
                }
                self.expect(Tok::Arrow)?;
                let mut body = self.expr()?;
                let span = start.merge(body.span);
                for p in params.into_iter().rev() {
                    body = Expr::new(ExprKind::Lambda(p, Box::new(body)), span);
                }
                Ok(body)
            }
            Tok::If => {
                let start = self.bump().span;
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(
                    ExprKind::If(Box::new(c), Box::new(t), Box::new(e)),
                    span,
                ))
            }
            _ => self.cmp(),
        }
    }

    fn cmp(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Gt => BinOp::Gt,
            Tok::Le => BinOp::Le,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(
            ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn add(&mut self) -> Result<Expr, Diagnostic> {
        // Unary minus on the first term.
        let mut lhs = if self.peek() == &Tok::Minus {
            let start = self.bump().span;
            let e = self.mul()?;
            let span = start.merge(e.span);
            Expr::new(
                ExprKind::BinOp(
                    BinOp::Sub,
                    Box::new(Expr::new(ExprKind::Int(0), start)),
                    Box::new(e),
                ),
                span,
            )
        } else {
            self.mul()?
        };
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.app()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.app()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::BinOp(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Float(_)
                | Tok::Str(_)
                | Tok::Bool(_)
                | Tok::LParen
                | Tok::LBracket
        )
    }

    fn app(&mut self) -> Result<Expr, Diagnostic> {
        let mut head = self.atom()?;
        while self.starts_atom() {
            // `f (a, b)` is application to a tuple; `x ;; let` stops here.
            let arg = self.atom()?;
            let span = head.span.merge(arg.span);
            head = Expr::new(ExprKind::App(Box::new(head), Box::new(arg)), span);
        }
        Ok(head)
    }

    fn atom(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(i), span))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::new(ExprKind::Float(x), span))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), span))
            }
            Tok::Bool(b) => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(b), span))
            }
            Tok::Ident(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::Var(v), span))
            }
            Tok::LParen => {
                self.bump();
                if self.peek() == &Tok::RParen {
                    let end = self.bump().span;
                    return Ok(Expr::new(ExprKind::Unit, span.merge(end)));
                }
                let first = self.expr()?;
                if self.peek() == &Tok::Comma {
                    let mut parts = vec![first];
                    while self.peek() == &Tok::Comma {
                        self.bump();
                        parts.push(self.expr()?);
                    }
                    let end = self.expect(Tok::RParen)?;
                    return Ok(Expr::new(ExprKind::Tuple(parts), span.merge(end)));
                }
                let end = self.expect(Tok::RParen)?;
                Ok(Expr {
                    span: span.merge(end),
                    ..first
                })
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    items.push(self.expr()?);
                    while self.peek() == &Tok::Semi {
                        self.bump();
                        items.push(self.expr()?);
                    }
                }
                let end = self.expect(Tok::RBracket)?;
                Ok(Expr::new(ExprKind::List(items), span.merge(end)))
            }
            other => Err(Diagnostic::new(
                Stage::Parse,
                format!("expected expression, found `{other}`"),
                self.span(),
            )),
        }
    }
}

// Silence the "unused" lint for helpers kept for error recovery work.
impl Parser {
    #[allow(dead_code)]
    fn peek_is_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof) && self.peek2() == &Tok::Eof && self.prev_span().end > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_program_shape() {
        let src = r#"
            let nproc = 8;;
            let loop (state, im) =
              let ws = get_windows nproc state im in
              let marks = df nproc detect_mark accum_marks empty_list ws in
              predict marks;;
            let main = itermem read_img loop display_marks s0 (512, 512);;
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.items.len(), 3);
        assert_eq!(prog.items[0].name, "nproc");
        assert_eq!(prog.items[1].name, "loop");
        assert_eq!(prog.items[1].params.len(), 1);
        assert!(matches!(prog.items[1].params[0], Pattern::Tuple(_, _)));
        // main body is an application spine of 5 arguments.
        let (head, args) = prog.items[2].body.uncurry_app();
        assert!(matches!(&head.kind, ExprKind::Var(v) if v == "itermem"));
        assert_eq!(args.len(), 5);
        assert!(matches!(args[4].kind, ExprKind::Tuple(_)));
    }

    #[test]
    fn application_is_left_associative() {
        let e = parse_expr("f a b").unwrap();
        let (head, args) = e.uncurry_app();
        assert!(matches!(&head.kind, ExprKind::Var(v) if v == "f"));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::BinOp(BinOp::Add, _, rhs) => {
                assert!(matches!(rhs.kind, ExprKind::BinOp(BinOp::Mul, _, _)));
            }
            other => panic!("expected +, got {other:?}"),
        }
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-5 + 2").unwrap();
        assert!(matches!(e.kind, ExprKind::BinOp(BinOp::Add, _, _)));
    }

    #[test]
    fn let_in_with_tuple_pattern() {
        let e = parse_expr("let z', y = step (z, x) in y").unwrap();
        match e.kind {
            ExprKind::Let { pat, .. } => {
                assert_eq!(pat.bound_vars(), vec!["z'", "y"]);
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn lambda_multi_param_desugars() {
        let e = parse_expr("fun x y -> x + y").unwrap();
        match e.kind {
            ExprKind::Lambda(_, inner) => {
                assert!(matches!(inner.kind, ExprKind::Lambda(_, _)));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn lists_and_tuples() {
        let e = parse_expr("[1; 2; 3]").unwrap();
        assert!(matches!(e.kind, ExprKind::List(ref v) if v.len() == 3));
        let t = parse_expr("(1, true, \"x\")").unwrap();
        assert!(matches!(t.kind, ExprKind::Tuple(ref v) if v.len() == 3));
        let u = parse_expr("()").unwrap();
        assert!(matches!(u.kind, ExprKind::Unit));
        let empty = parse_expr("[]").unwrap();
        assert!(matches!(empty.kind, ExprKind::List(ref v) if v.is_empty()));
    }

    #[test]
    fn if_then_else() {
        let e = parse_expr("if a < b then 1 else 2").unwrap();
        assert!(matches!(e.kind, ExprKind::If(_, _, _)));
    }

    #[test]
    fn comparison_is_non_associative() {
        // `a < b < c` parses as (a < b) with trailing `< c` rejected.
        assert!(parse_expr("a < b < c").is_err());
    }

    #[test]
    fn missing_semisemi_is_an_error() {
        let err = parse_program("let x = 1").unwrap_err();
        assert!(err.message.contains(";;"), "{}", err.message);
    }

    #[test]
    fn error_positions_are_useful() {
        let src = "let x = ;;";
        let err = parse_program(src).unwrap_err();
        let (line, col) = err.span.unwrap().line_col(src);
        assert_eq!((line, col), (1, 9));
    }

    #[test]
    fn parenthesised_expression_keeps_value() {
        let a = parse_expr("(f x)").unwrap();
        let b = parse_expr("f x").unwrap();
        // Same structure ignoring spans.
        let (ha, aa) = a.uncurry_app();
        let (hb, ab) = b.uncurry_app();
        assert_eq!(format!("{:?}", ha.kind), format!("{:?}", hb.kind));
        assert_eq!(aa.len(), ab.len());
    }
}
