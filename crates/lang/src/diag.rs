//! Source locations and diagnostics.

use std::fmt;

/// A half-open byte range in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// First byte.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// `(line, column)` of the span start (1-based) within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// The compiler pass a diagnostic originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Type inference.
    Type,
    /// Skeleton expansion.
    Expand,
    /// Evaluation (sequential emulation).
    Eval,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stage::Lex => write!(f, "lexical error"),
            Stage::Parse => write!(f, "parse error"),
            Stage::Type => write!(f, "type error"),
            Stage::Expand => write!(f, "expansion error"),
            Stage::Eval => write!(f, "evaluation error"),
        }
    }
}

/// A located compiler diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Originating pass.
    pub stage: Stage,
    /// Error message (lowercase, no trailing punctuation).
    pub message: String,
    /// Location in the source, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a located diagnostic.
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            stage,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a diagnostic with no location.
    pub fn global(stage: Stage, message: impl Into<String>) -> Self {
        Diagnostic {
            stage,
            message: message.into(),
            span: None,
        }
    }

    /// Renders the diagnostic with `line:col` resolved against `source`.
    pub fn render(&self, source: &str) -> String {
        match self.span {
            Some(span) => {
                let (line, col) = span.line_col(source);
                format!("{}:{}: {}: {}", line, col, self.stage, self.message)
            }
            None => format!("{}: {}", self.stage, self.message),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(
                f,
                "{} at {}..{}: {}",
                self.stage, s.start, s.end, self.message
            ),
            None => write!(f, "{}: {}", self.stage, self.message),
        }
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "let a = 1;;\nlet b = 2;;";
        let span = Span::new(16, 17); // the 'b'
        assert_eq!(span.line_col(src), (2, 5));
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
    }

    #[test]
    fn render_includes_position() {
        let src = "let x = @;;";
        let d = Diagnostic::new(Stage::Lex, "unexpected character `@`", Span::new(8, 9));
        assert_eq!(
            d.render(src),
            "1:9: lexical error: unexpected character `@`"
        );
    }

    #[test]
    fn display_without_span() {
        let d = Diagnostic::global(Stage::Type, "main is not defined");
        assert_eq!(d.to_string(), "type error: main is not defined");
    }
}
