//! Polymorphic type inference (Hindley–Milner, Algorithm W).
//!
//! The paper's front-end "performs parsing and polymorphic type-checking"
//! against the skeleton signatures of §2, e.g.
//!
//! ```text
//! val df : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
//! ```
//!
//! Those signatures are pre-installed by [`TypeEnv::with_skeletons`];
//! application-specific sequential functions are declared with
//! [`TypeEnv::declare`] (usually via [`parse_type`]).

use crate::ast::{BinOp, Expr, ExprKind, Pattern, Program};
use crate::diag::{Diagnostic, Span, Stage};
use crate::token::{lex, Tok, Token};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A monotype.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A unification variable.
    Var(u32),
    /// A type constant (`int`, `bool`, `image`, `state`, …).
    Con(String),
    /// `t list`
    List(Box<Type>),
    /// `t1 * t2 * …`
    Tuple(Vec<Type>),
    /// `t1 -> t2`
    Fun(Box<Type>, Box<Type>),
}

impl Type {
    /// Convenience constructor for constants.
    pub fn con(name: &str) -> Type {
        Type::Con(name.to_string())
    }

    /// `int`.
    pub fn int() -> Type {
        Type::con("int")
    }

    /// `bool`.
    pub fn bool() -> Type {
        Type::con("bool")
    }

    /// `unit`.
    pub fn unit() -> Type {
        Type::con("unit")
    }

    /// Function type `a -> b`.
    pub fn fun(a: Type, b: Type) -> Type {
        Type::Fun(Box::new(a), Box::new(b))
    }

    /// Curried function type `a1 -> a2 -> … -> r`.
    pub fn fun_n(args: Vec<Type>, r: Type) -> Type {
        args.into_iter().rev().fold(r, |acc, a| Type::fun(a, acc))
    }

    /// List type.
    pub fn list(t: Type) -> Type {
        Type::List(Box::new(t))
    }

    fn free_vars(&self, out: &mut HashSet<u32>) {
        match self {
            Type::Var(v) => {
                out.insert(*v);
            }
            Type::Con(_) => {}
            Type::List(t) => t.free_vars(out),
            Type::Tuple(ts) => ts.iter().for_each(|t| t.free_vars(out)),
            Type::Fun(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Variables render as 'a, 'b, … in order of first appearance, so
        // internal ids never leak into messages.
        fn collect(t: &Type, order: &mut Vec<u32>) {
            match t {
                Type::Var(v) => {
                    if !order.contains(v) {
                        order.push(*v);
                    }
                }
                Type::Con(_) => {}
                Type::List(x) => collect(x, order),
                Type::Tuple(xs) => xs.iter().for_each(|x| collect(x, order)),
                Type::Fun(a, b) => {
                    collect(a, order);
                    collect(b, order);
                }
            }
        }
        let mut order = Vec::new();
        collect(self, &mut order);
        fn go(t: &Type, f: &mut fmt::Formatter<'_>, prec: u8, order: &[u32]) -> fmt::Result {
            match t {
                Type::Var(v) => {
                    let idx = order.iter().position(|x| x == v).unwrap_or(0) as u32;
                    let letter = (b'a' + (idx % 26) as u8) as char;
                    let suffix = idx / 26;
                    if suffix == 0 {
                        write!(f, "'{letter}")
                    } else {
                        write!(f, "'{letter}{suffix}")
                    }
                }
                Type::Con(c) => write!(f, "{c}"),
                Type::List(t) => {
                    go(t, f, 3, order)?;
                    write!(f, " list")
                }
                Type::Tuple(ts) => {
                    if prec >= 2 {
                        write!(f, "(")?;
                    }
                    for (i, t) in ts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " * ")?;
                        }
                        go(t, f, 2, order)?;
                    }
                    if prec >= 2 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Type::Fun(a, b) => {
                    if prec >= 1 {
                        write!(f, "(")?;
                    }
                    go(a, f, 1, order)?;
                    write!(f, " -> ")?;
                    go(b, f, 0, order)?;
                    if prec >= 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, f, 0, &order)
    }
}

/// A type scheme `∀ vars. ty`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheme {
    /// Universally quantified variables.
    pub vars: Vec<u32>,
    /// The body.
    pub ty: Type,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: Type) -> Scheme {
        Scheme {
            vars: Vec::new(),
            ty,
        }
    }

    /// Generalises every free variable of `ty` (used for externals, whose
    /// variables are all scheme-bound by construction).
    pub fn poly(ty: Type) -> Scheme {
        let mut vars = HashSet::new();
        ty.free_vars(&mut vars);
        let mut vars: Vec<u32> = vars.into_iter().collect();
        vars.sort_unstable();
        Scheme { vars, ty }
    }
}

/// The typing environment.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: HashMap<String, Scheme>,
}

impl TypeEnv {
    /// An empty environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// An environment pre-loaded with the paper's skeleton signatures:
    ///
    /// ```text
    /// df      : int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
    /// scm     : int -> ('a -> 'b list) -> ('b -> 'c) -> ('c list -> 'd) -> 'a -> 'd
    /// tf      : int -> ('a -> 'a list * 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c
    /// itermem : ('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit
    /// ```
    pub fn with_skeletons() -> Self {
        let mut env = TypeEnv::new();
        for (name, sig) in [
            (
                "df",
                "int -> ('a -> 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c",
            ),
            (
                "scm",
                "int -> ('a -> 'b list) -> ('b -> 'c) -> ('c list -> 'd) -> 'a -> 'd",
            ),
            (
                "tf",
                "int -> ('a -> 'a list * 'b) -> ('c -> 'b -> 'c) -> 'c -> 'a list -> 'c",
            ),
            (
                "itermem",
                "('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit",
            ),
        ] {
            env.declare(name, sig).expect("builtin signatures parse");
        }
        env
    }

    /// Declares an external (C) function by signature text, e.g.
    /// `env.declare("detect_mark", "window -> mark")`.
    ///
    /// # Errors
    ///
    /// Returns a diagnostic when the signature does not parse.
    pub fn declare(&mut self, name: &str, signature: &str) -> Result<(), Diagnostic> {
        let ty = parse_type(signature)?;
        self.bindings.insert(name.to_string(), Scheme::poly(ty));
        Ok(())
    }

    /// Binds `name` to a scheme directly.
    pub fn bind(&mut self, name: &str, scheme: Scheme) {
        self.bindings.insert(name.to_string(), scheme);
    }

    /// Looks up a name.
    pub fn lookup(&self, name: &str) -> Option<&Scheme> {
        self.bindings.get(name)
    }

    fn free_vars(&self, out: &mut HashSet<u32>) {
        for s in self.bindings.values() {
            let mut fv = HashSet::new();
            s.ty.free_vars(&mut fv);
            for v in &s.vars {
                fv.remove(v);
            }
            out.extend(fv);
        }
    }
}

/// Inference result for a whole program.
#[derive(Debug, Clone)]
pub struct ProgramTypes {
    /// Scheme of every top-level binding, in declaration order.
    pub items: Vec<(String, Scheme)>,
}

impl ProgramTypes {
    /// The scheme of a top-level name.
    pub fn scheme_of(&self, name: &str) -> Option<&Scheme> {
        self.items.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// The inference engine.
#[derive(Debug, Default)]
pub struct Infer {
    next: u32,
    subst: HashMap<u32, Type>,
}

impl Infer {
    /// Creates a fresh engine. Variable ids start high so they never
    /// collide with ids produced by [`parse_type`].
    pub fn new() -> Self {
        Infer {
            next: 1000,
            subst: HashMap::new(),
        }
    }

    /// A fresh unification variable.
    pub fn fresh(&mut self) -> Type {
        let v = self.next;
        self.next += 1;
        Type::Var(v)
    }

    /// Fully applies the current substitution to `t`.
    pub fn resolve(&self, t: &Type) -> Type {
        match t {
            Type::Var(v) => match self.subst.get(v) {
                Some(bound) => self.resolve(&bound.clone()),
                None => Type::Var(*v),
            },
            Type::Con(c) => Type::Con(c.clone()),
            Type::List(x) => Type::list(self.resolve(x)),
            Type::Tuple(xs) => Type::Tuple(xs.iter().map(|x| self.resolve(x)).collect()),
            Type::Fun(a, b) => Type::fun(self.resolve(a), self.resolve(b)),
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match self.resolve(t) {
            Type::Var(w) => w == v,
            Type::Con(_) => false,
            Type::List(x) => self.occurs(v, &x),
            Type::Tuple(xs) => xs.iter().any(|x| self.occurs(v, x)),
            Type::Fun(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
        }
    }

    /// Unifies two types.
    ///
    /// # Errors
    ///
    /// Returns a located diagnostic on constructor clash or occurs-check
    /// failure.
    pub fn unify(&mut self, a: &Type, b: &Type, span: Span) -> Result<(), Diagnostic> {
        let (ra, rb) = (self.resolve(a), self.resolve(b));
        match (&ra, &rb) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), t) | (t, Type::Var(v)) => {
                if self.occurs(*v, t) {
                    return Err(Diagnostic::new(
                        Stage::Type,
                        format!("occurs check: cannot construct the infinite type {ra} = {rb}"),
                        span,
                    ));
                }
                self.subst.insert(*v, t.clone());
                Ok(())
            }
            (Type::Con(x), Type::Con(y)) if x == y => Ok(()),
            (Type::List(x), Type::List(y)) => self.unify(x, y, span),
            (Type::Tuple(xs), Type::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y, span)?;
                }
                Ok(())
            }
            (Type::Fun(a1, b1), Type::Fun(a2, b2)) => {
                self.unify(a1, a2, span)?;
                self.unify(b1, b2, span)
            }
            _ => Err(Diagnostic::new(
                Stage::Type,
                format!("type mismatch: expected {ra}, found {rb}"),
                span,
            )),
        }
    }

    /// Instantiates a scheme with fresh variables.
    pub fn instantiate(&mut self, scheme: &Scheme) -> Type {
        let mapping: HashMap<u32, Type> = scheme.vars.iter().map(|&v| (v, self.fresh())).collect();
        fn subst(t: &Type, m: &HashMap<u32, Type>) -> Type {
            match t {
                Type::Var(v) => m.get(v).cloned().unwrap_or(Type::Var(*v)),
                Type::Con(c) => Type::Con(c.clone()),
                Type::List(x) => Type::list(subst(x, m)),
                Type::Tuple(xs) => Type::Tuple(xs.iter().map(|x| subst(x, m)).collect()),
                Type::Fun(a, b) => Type::fun(subst(a, m), subst(b, m)),
            }
        }
        subst(&scheme.ty, &mapping)
    }

    /// Generalises `t` over variables not free in `env`.
    pub fn generalize(&self, env: &TypeEnv, t: &Type) -> Scheme {
        let t = self.resolve(t);
        let mut tv = HashSet::new();
        t.free_vars(&mut tv);
        let mut ev = HashSet::new();
        env.free_vars(&mut ev);
        // Environment variables must be resolved too.
        let ev: HashSet<u32> = ev
            .into_iter()
            .flat_map(|v| {
                let mut out = HashSet::new();
                self.resolve(&Type::Var(v)).free_vars(&mut out);
                out
            })
            .collect();
        let mut vars: Vec<u32> = tv.difference(&ev).copied().collect();
        vars.sort_unstable();
        Scheme { vars, ty: t }
    }

    /// Binds `pat` against `t`, extending `env` with **monomorphic**
    /// bindings (lambda-bound variables).
    fn bind_pattern_mono(
        &mut self,
        env: &mut TypeEnv,
        pat: &Pattern,
        t: &Type,
    ) -> Result<(), Diagnostic> {
        match pat {
            Pattern::Var(v, _) => {
                env.bind(v, Scheme::mono(t.clone()));
                Ok(())
            }
            Pattern::Wildcard(_) => Ok(()),
            Pattern::Unit(s) => self.unify(t, &Type::unit(), *s),
            Pattern::Tuple(ps, s) => {
                let parts: Vec<Type> = ps.iter().map(|_| self.fresh()).collect();
                self.unify(t, &Type::Tuple(parts.clone()), *s)?;
                for (p, pt) in ps.iter().zip(&parts) {
                    self.bind_pattern_mono(env, p, pt)?;
                }
                Ok(())
            }
        }
    }

    /// Infers the type of `expr` under `env`.
    ///
    /// # Errors
    ///
    /// Returns the first located type error.
    pub fn infer(&mut self, env: &TypeEnv, expr: &Expr) -> Result<Type, Diagnostic> {
        match &expr.kind {
            ExprKind::Int(_) => Ok(Type::int()),
            ExprKind::Float(_) => Ok(Type::con("float")),
            ExprKind::Bool(_) => Ok(Type::bool()),
            ExprKind::Str(_) => Ok(Type::con("string")),
            ExprKind::Unit => Ok(Type::unit()),
            ExprKind::Var(v) => match env.lookup(v) {
                Some(s) => Ok(self.instantiate(s)),
                None => Err(Diagnostic::new(
                    Stage::Type,
                    format!("unbound variable `{v}`"),
                    expr.span,
                )),
            },
            ExprKind::Tuple(es) => {
                let ts = es
                    .iter()
                    .map(|e| self.infer(env, e))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Type::Tuple(ts))
            }
            ExprKind::List(es) => {
                let elem = self.fresh();
                for e in es {
                    let t = self.infer(env, e)?;
                    self.unify(&elem, &t, e.span)?;
                }
                Ok(Type::list(elem))
            }
            ExprKind::App(f, a) => {
                let tf = self.infer(env, f)?;
                let ta = self.infer(env, a)?;
                let r = self.fresh();
                self.unify(&tf, &Type::fun(ta, r.clone()), expr.span)?;
                Ok(r)
            }
            ExprKind::Lambda(p, body) => {
                let tp = self.fresh();
                let mut inner = env.clone();
                self.bind_pattern_mono(&mut inner, p, &tp)?;
                let tb = self.infer(&inner, body)?;
                Ok(Type::fun(tp, tb))
            }
            ExprKind::Let { pat, value, body } => {
                let tv = self.infer(env, value)?;
                let mut inner = env.clone();
                match pat {
                    // Simple variables get let-polymorphism.
                    Pattern::Var(v, _) => {
                        let scheme = self.generalize(env, &tv);
                        inner.bind(v, scheme);
                    }
                    _ => self.bind_pattern_mono(&mut inner, pat, &tv)?,
                }
                self.infer(&inner, body)
            }
            ExprKind::If(c, t, e) => {
                let tc = self.infer(env, c)?;
                self.unify(&tc, &Type::bool(), c.span)?;
                let tt = self.infer(env, t)?;
                let te = self.infer(env, e)?;
                self.unify(&tt, &te, expr.span)?;
                Ok(tt)
            }
            ExprKind::BinOp(op, l, r) => {
                let tl = self.infer(env, l)?;
                let tr = self.infer(env, r)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        self.unify(&tl, &Type::int(), l.span)?;
                        self.unify(&tr, &Type::int(), r.span)?;
                        Ok(Type::int())
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                        self.unify(&tl, &tr, expr.span)?;
                        Ok(Type::bool())
                    }
                }
            }
        }
    }
}

/// Type-checks a whole program under `env`, returning the scheme of every
/// top-level binding. Bindings see earlier bindings (no mutual recursion),
/// matching the paper's Caml usage.
///
/// # Errors
///
/// Returns the first located type error.
pub fn check_program(env: &TypeEnv, program: &Program) -> Result<ProgramTypes, Diagnostic> {
    let mut env = env.clone();
    let mut infer = Infer::new();
    let mut items = Vec::new();
    for item in &program.items {
        let lam = item.as_lambda();
        let t = infer.infer(&env, &lam)?;
        let scheme = infer.generalize(&env, &t);
        env.bind(&item.name, scheme.clone());
        items.push((item.name.clone(), scheme));
    }
    Ok(ProgramTypes { items })
}

/// Parses a type expression, e.g. `"int -> ('a -> 'b) -> 'a list -> 'b"`.
///
/// Grammar: `->` is right-associative, `*` builds tuples, `list` is a
/// postfix constructor, `'a` are scheme variables (shared by name).
///
/// # Errors
///
/// Returns a diagnostic for malformed signatures.
pub fn parse_type(source: &str) -> Result<Type, Diagnostic> {
    let toks = lex(source)?;
    let mut p = TypeParser {
        toks,
        pos: 0,
        vars: HashMap::new(),
        next: 0,
    };
    let t = p.arrow()?;
    if p.peek() != &Tok::Eof {
        return Err(Diagnostic::new(
            Stage::Parse,
            format!("unexpected `{}` in type", p.peek()),
            p.span(),
        ));
    }
    Ok(t)
}

struct TypeParser {
    toks: Vec<Token>,
    pos: usize,
    vars: HashMap<String, u32>,
    next: u32,
}

impl TypeParser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn arrow(&mut self) -> Result<Type, Diagnostic> {
        let lhs = self.product()?;
        if self.peek() == &Tok::Arrow {
            self.bump();
            let rhs = self.arrow()?;
            return Ok(Type::fun(lhs, rhs));
        }
        Ok(lhs)
    }

    fn product(&mut self) -> Result<Type, Diagnostic> {
        let first = self.postfix()?;
        if self.peek() != &Tok::Star {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.peek() == &Tok::Star {
            self.bump();
            parts.push(self.postfix()?);
        }
        Ok(Type::Tuple(parts))
    }

    fn postfix(&mut self) -> Result<Type, Diagnostic> {
        let mut t = self.atom()?;
        while let Tok::Ident(name) = self.peek() {
            if name == "list" {
                self.bump();
                t = Type::list(t);
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn atom(&mut self) -> Result<Type, Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(Type::Con(name))
            }
            Tok::TyVar(v) => {
                self.bump();
                let next = &mut self.next;
                let id = *self.vars.entry(v).or_insert_with(|| {
                    let id = *next;
                    *next += 1;
                    id
                });
                Ok(Type::Var(id))
            }
            Tok::LParen => {
                self.bump();
                let t = self.arrow()?;
                if self.peek() != &Tok::RParen {
                    return Err(Diagnostic::new(
                        Stage::Parse,
                        format!("expected `)`, found `{}`", self.peek()),
                        self.span(),
                    ));
                }
                self.bump();
                Ok(t)
            }
            other => Err(Diagnostic::new(
                Stage::Parse,
                format!("expected type, found `{other}`"),
                self.span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn infer_str(env: &TypeEnv, src: &str) -> Result<String, Diagnostic> {
        let e = parse_expr(src)?;
        let mut inf = Infer::new();
        let t = inf.infer(env, &e)?;
        Ok(inf.resolve(&t).to_string())
    }

    #[test]
    fn parse_type_roundtrips() {
        let t = parse_type("int -> ('a -> 'b) -> 'a list -> 'b").unwrap();
        assert_eq!(t.to_string(), "int -> ('a -> 'b) -> 'a list -> 'b");
        let t2 = parse_type("'c * 'b -> 'c * 'd").unwrap();
        assert!(matches!(t2, Type::Fun(_, _)));
    }

    #[test]
    fn literals_and_arith() {
        let env = TypeEnv::new();
        assert_eq!(infer_str(&env, "1 + 2 * 3").unwrap(), "int");
        assert_eq!(infer_str(&env, "1 < 2").unwrap(), "bool");
        assert_eq!(infer_str(&env, "(1, true)").unwrap(), "int * bool");
        assert_eq!(infer_str(&env, "[1; 2]").unwrap(), "int list");
    }

    #[test]
    fn heterogeneous_list_rejected() {
        let env = TypeEnv::new();
        let err = infer_str(&env, "[1; true]").unwrap_err();
        assert!(err.message.contains("mismatch"), "{}", err.message);
    }

    #[test]
    fn lambda_and_application() {
        let env = TypeEnv::new();
        assert_eq!(infer_str(&env, "fun x -> x + 1").unwrap(), "int -> int");
        assert_eq!(infer_str(&env, "(fun x -> x) 5").unwrap(), "int");
    }

    #[test]
    fn let_polymorphism() {
        let env = TypeEnv::new();
        assert_eq!(
            infer_str(&env, "let id = fun x -> x in (id 1, id true)").unwrap(),
            "int * bool"
        );
    }

    #[test]
    fn lambda_bound_vars_are_monomorphic() {
        let env = TypeEnv::new();
        // Classic: a lambda-bound f cannot be used at two types.
        let err = infer_str(&env, "fun f -> (f 1, f true)").unwrap_err();
        assert!(err.message.contains("mismatch"));
    }

    #[test]
    fn occurs_check_fires() {
        let env = TypeEnv::new();
        let err = infer_str(&env, "fun x -> x x").unwrap_err();
        assert!(err.message.contains("occurs"), "{}", err.message);
    }

    #[test]
    fn unbound_variable_located() {
        let env = TypeEnv::new();
        let err = infer_str(&env, "1 + nope").unwrap_err();
        assert!(err.message.contains("unbound variable `nope`"));
        assert!(err.span.is_some());
    }

    #[test]
    fn df_signature_enforces_consistency() {
        let mut env = TypeEnv::with_skeletons();
        env.declare("detect", "window -> mark").unwrap();
        env.declare("accum", "mark list -> mark -> mark list")
            .unwrap();
        env.declare("empty", "mark list").unwrap();
        env.declare("windows", "window list").unwrap();
        assert_eq!(
            infer_str(&env, "df 8 detect accum empty windows").unwrap(),
            "mark list"
        );
        // Wrong accumulator type must be rejected.
        env.declare("bad_acc", "int -> mark -> int").unwrap();
        let err = infer_str(&env, "df 8 detect accum 0 windows").unwrap_err();
        assert!(err.message.contains("mismatch"));
    }

    #[test]
    fn paper_program_typechecks() {
        let src = r#"
            let nproc = 8;;
            let s0 = init_state ();;
            let loop (state, im) =
              let ws = get_windows nproc state im in
              let marks = df nproc detect_mark accum_marks empty_list ws in
              predict marks;;
            let main = itermem read_img loop display_marks s0 512;;
        "#;
        let mut env = TypeEnv::with_skeletons();
        for (name, sig) in [
            ("init_state", "unit -> state"),
            ("read_img", "int -> image"),
            ("get_windows", "int -> state -> image -> window list"),
            ("detect_mark", "window -> mark"),
            ("accum_marks", "mark list -> mark -> mark list"),
            ("empty_list", "mark list"),
            ("predict", "mark list -> state * mark_list_out"),
            ("display_marks", "mark_list_out -> unit"),
        ] {
            env.declare(name, sig).unwrap();
        }
        let prog = parse_program(src).unwrap();
        let types = check_program(&env, &prog).unwrap();
        assert_eq!(types.scheme_of("main").unwrap().ty.to_string(), "unit");
        assert_eq!(
            types.scheme_of("loop").unwrap().ty.to_string(),
            "state * image -> state * mark_list_out"
        );
    }

    #[test]
    fn ill_typed_paper_variant_rejected_with_location() {
        // detect_mark applied to images instead of windows.
        let src = "let r = df 4 detect_mark accum_marks empty_list imgs;;";
        let mut env = TypeEnv::with_skeletons();
        env.declare("detect_mark", "window -> mark").unwrap();
        env.declare("accum_marks", "mark list -> mark -> mark list")
            .unwrap();
        env.declare("empty_list", "mark list").unwrap();
        env.declare("imgs", "image list").unwrap();
        let prog = parse_program(src).unwrap();
        let err = check_program(&env, &prog).unwrap_err();
        assert!(err.span.is_some());
        assert!(err.message.contains("mismatch"));
    }

    #[test]
    fn itermem_signature_matches_fig4() {
        let env = TypeEnv::with_skeletons();
        let scheme = env.lookup("itermem").unwrap();
        assert_eq!(
            scheme.ty.to_string(),
            "('a -> 'b) -> ('c * 'b -> 'c * 'd) -> ('d -> unit) -> 'c -> 'a -> unit"
        );
        assert_eq!(scheme.vars.len(), 4);
    }

    #[test]
    fn generalization_respects_env() {
        // In `fun x -> let y = x in y`, y generalises to nothing (x is
        // env-bound), so the function stays 'a -> 'a rather than exploding.
        let env = TypeEnv::new();
        assert_eq!(
            infer_str(&env, "fun x -> let y = x in y").unwrap(),
            "'a -> 'a"
        );
    }
}
