//! Compiling Skipper-ML text to typed [`Skeleton`] programs.
//!
//! This module is the bridge the ROADMAP calls "making the ML front-end
//! the single source of truth": a DSL program — the paper's §3 Caml
//! subset, parsed by [`crate::parser`] and typed by [`crate::types`] —
//! is lowered to a real [`skipper`] program value that runs unmodified
//! on every backend (`SeqBackend`, `ThreadBackend`, `PoolBackend`,
//! `ShardBackend`, and `skipper-exec`'s `SimBackend`).
//!
//! # Shape of a compilable program
//!
//! A program is a sequence of top-level `let` bindings ending in `main`,
//! which must be a fully applied `itermem`:
//!
//! ```text
//! let nproc = 4;;
//! let loop (state, im) =
//!   let r = scm nproc (split_bands nproc) label_band merge_bands im in
//!   (state, r);;
//! let main = itermem camera loop display () 0;;
//! ```
//!
//! Every leaf function (`camera`, `split_bands`, …) is a **kernel**: a
//! named Rust function over executive [`Value`]s registered in a
//! [`KernelRegistry`] together with its DSL type signature. The
//! registry's signatures seed the typechecker, so a program is fully
//! type-checked against the kernels it will actually call before
//! anything is lowered — [`compile_program`] runs
//! [`crate::types::check_program`] internally and never compiles
//! untyped text.
//!
//! The loop body is compiled to a [`CompiledBody`]: a short sequence of
//! steps (kernel calls and `df`/`scm`/`tf` skeleton stages) over an
//! environment of frame-local values. `CompiledBody` implements the same
//! execution traits as any handwritten body — [`Skeleton`],
//! [`PoolRun`], [`ShardRun`] and `SimLowerBody` — and each skeleton
//! stage executes through the very same `skipper::{df, scm, tf}` entry
//! points a handwritten program uses, so a compiled program's dispatch
//! **receipts** ([`skipper::receipted`]) are bit-identical to the
//! handwritten equivalent's. The whole program is then just
//! `itermem(body, init)` ([`CompiledProgram::loop_program`]).
//!
//! # What is rejected, and how
//!
//! Compilation is total over type-checked input: any construct outside
//! the compilable fragment (first-class use of a kernel, arithmetic on
//! per-frame data, a nested `itermem`, a partially applied skeleton, …)
//! is reported as a spanned [`Diagnostic`] at [`Stage::Expand`] — never
//! a panic. The only panics in this module are kernel-contract
//! violations: a *registered Rust kernel* returning a value that
//! contradicts its own declared signature, which no DSL text can cause.

use crate::ast::{Expr, ExprKind, Pattern, Program};
use crate::diag::{Diagnostic, Span, Stage};
use crate::types::{check_program, parse_type, Type, TypeEnv};
use skipper::{df, itermem, scm, tf, IterLoop, PoolRun, ShardRun, Skeleton, WorkerPool};
use skipper_exec::{Fragment, Lowering, SimLower, SimLowerBody, Value};
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::Arc;

/// A registered kernel body: a named Rust function over executive
/// values.
pub type KernelFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A registered frame source: called with the program's source argument
/// and a frame index, returns the frame or `None` at end of stream.
pub type SourceFn = Arc<dyn Fn(&Value, u64) -> Option<Value> + Send + Sync>;

/// A registered kernel: name, declared DSL signature, derived arity and
/// cost hint.
#[derive(Clone)]
struct KernelEntry {
    signature: String,
    arity: usize,
    cost_hint: u64,
    f: KernelFn,
}

#[derive(Clone)]
struct SourceEntry {
    signature: String,
    f: SourceFn,
}

/// The kernel vocabulary a DSL program compiles against: named Rust
/// functions over [`Value`]s, each carrying the DSL type signature it is
/// type-checked under. Shared between `skipperc` and the apps crate so
/// one registry serves both the driver and the differential tests.
#[derive(Clone, Default)]
pub struct KernelRegistry {
    kernels: BTreeMap<String, KernelEntry>,
    sources: BTreeMap<String, SourceEntry>,
    constants: BTreeMap<String, (String, Value)>,
}

/// Counts the curried parameters of a declared signature
/// (`int -> image -> band list` has arity 2).
fn arity_of(t: &Type) -> usize {
    match t {
        Type::Fun(_, r) => 1 + arity_of(r),
        _ => 0,
    }
}

impl KernelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers kernel `name` with DSL type `signature`; the kernel's
    /// arity is the signature's curried-parameter count.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] when the signature does not parse as a type, or
    /// when it declares no parameters (use
    /// [`register_constant`](Self::register_constant) for values).
    pub fn register(
        &mut self,
        name: &str,
        signature: &str,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Result<(), Diagnostic> {
        self.register_costed(name, signature, 0, f)
    }

    /// Registers kernel `name` carrying a per-call WCET `cost_hint` for
    /// the SynDEx scheduler (see [`skipper::Df::with_cost_hint`]).
    ///
    /// # Errors
    ///
    /// As [`register`](Self::register).
    pub fn register_costed(
        &mut self,
        name: &str,
        signature: &str,
        cost_hint: u64,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Result<(), Diagnostic> {
        let arity = arity_of(&parse_type(signature)?);
        if arity == 0 {
            return Err(Diagnostic::global(
                Stage::Expand,
                format!("kernel `{name}` must take at least one argument (signature `{signature}`); register values with register_constant"),
            ));
        }
        self.kernels.insert(
            name.to_string(),
            KernelEntry {
                signature: signature.to_string(),
                arity,
                cost_hint,
                f: Arc::new(f),
            },
        );
        Ok(())
    }

    /// Registers a frame source. Sources have an ordinary function
    /// signature in the DSL (`itermem`'s first argument applies them to
    /// the program's source argument), but the driver invokes them once
    /// per frame with a frame index, stopping at the first `None`.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] when the signature does not parse.
    pub fn register_source(
        &mut self,
        name: &str,
        signature: &str,
        f: impl Fn(&Value, u64) -> Option<Value> + Send + Sync + 'static,
    ) -> Result<(), Diagnostic> {
        parse_type(signature)?;
        self.sources.insert(
            name.to_string(),
            SourceEntry {
                signature: signature.to_string(),
                f: Arc::new(f),
            },
        );
        Ok(())
    }

    /// Registers a named constant (e.g. a structured initial state no
    /// DSL literal can spell).
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] when the signature does not parse.
    pub fn register_constant(
        &mut self,
        name: &str,
        signature: &str,
        value: Value,
    ) -> Result<(), Diagnostic> {
        parse_type(signature)?;
        self.constants
            .insert(name.to_string(), (signature.to_string(), value));
        Ok(())
    }

    /// The typing environment for programs over this registry: the
    /// skeleton signatures plus one declaration per kernel, source and
    /// constant.
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] when any stored signature fails to re-parse.
    pub fn type_env(&self) -> Result<TypeEnv, Diagnostic> {
        let mut env = TypeEnv::with_skeletons();
        for (name, k) in &self.kernels {
            env.declare(name, &k.signature)?;
        }
        for (name, s) in &self.sources {
            env.declare(name, &s.signature)?;
        }
        for (name, (sig, _)) in &self.constants {
            env.declare(name, sig)?;
        }
        Ok(env)
    }
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRegistry")
            .field("kernels", &self.kernels.keys().collect::<Vec<_>>())
            .field("sources", &self.sources.keys().collect::<Vec<_>>())
            .field("constants", &self.constants.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// A registered Rust kernel broke the signature it was registered
/// under. The typechecker verified the *program* against the declared
/// signatures, so this is unreachable from DSL text — it means the
/// `KernelRegistry` entry itself is buggy, which is a host-code defect
/// on par with any other Rust panic.
#[cold]
fn kernel_contract_violation(kernel: &str, expected: &str, got: &Value) -> ! {
    panic!("kernel `{kernel}` violated its registered signature: expected {expected}, got {got:?}")
}

/// A kernel with zero or more constant arguments already applied
/// (partial application like `split_bands nproc` closes over constants
/// at compile time).
#[derive(Clone)]
struct KernelCall {
    name: String,
    f: KernelFn,
    pre: Vec<Value>,
    remaining: usize,
    cost_hint: u64,
}

impl KernelCall {
    fn call(&self, rest: &[Value]) -> Value {
        let mut args = Vec::with_capacity(self.pre.len() + rest.len());
        args.extend(self.pre.iter().cloned());
        args.extend(rest.iter().cloned());
        (self.f)(&args)
    }

    fn call_list(&self, rest: &[Value]) -> Vec<Value> {
        let v = self.call(rest);
        match v.as_list() {
            Some(xs) => xs.to_vec(),
            None => kernel_contract_violation(&self.name, "a list", &v),
        }
    }
}

impl std::fmt::Debug for KernelCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}+{}", self.name, self.remaining, self.pre.len())
    }
}

/// A frame-local value reference: how a step argument is produced from
/// the body environment (`slot 0` = carried state, `slot 1` = frame,
/// `slot 2+` = earlier step results).
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Slot(usize),
    Const(Value),
    Tuple(Vec<Operand>),
    List(Vec<Operand>),
    Proj(Box<Operand>, usize),
}

impl Operand {
    /// Tuple constructor, folding all-constant components.
    fn tuple(ops: Vec<Operand>) -> Operand {
        if ops.iter().all(|o| matches!(o, Operand::Const(_))) {
            let vs = ops
                .into_iter()
                .map(|o| match o {
                    Operand::Const(v) => v,
                    _ => unreachable!("all components are constants"),
                })
                .collect();
            Operand::Const(Value::tuple(vs))
        } else {
            Operand::Tuple(ops)
        }
    }

    /// List constructor, folding all-constant elements.
    fn list(ops: Vec<Operand>) -> Operand {
        if ops.iter().all(|o| matches!(o, Operand::Const(_))) {
            let vs = ops
                .into_iter()
                .map(|o| match o {
                    Operand::Const(v) => v,
                    _ => unreachable!("all elements are constants"),
                })
                .collect();
            Operand::Const(Value::list(vs))
        } else {
            Operand::List(ops)
        }
    }

    /// Projection constructor with a peephole: projecting a syntactic
    /// tuple selects the component directly.
    fn proj(op: Operand, k: usize) -> Operand {
        match op {
            Operand::Tuple(ops) if k < ops.len() => ops[k].clone(),
            Operand::Const(ref v) => match v.as_tuple() {
                Some(t) if k < t.len() => Operand::Const(t[k].clone()),
                _ => Operand::Proj(Box::new(op), k),
            },
            _ => Operand::Proj(Box::new(op), k),
        }
    }

    /// The constant value of an environment-independent operand.
    fn const_value(&self) -> Option<Value> {
        match self {
            Operand::Slot(_) => None,
            Operand::Const(v) => Some(v.clone()),
            Operand::Tuple(ops) => Some(Value::tuple(
                ops.iter()
                    .map(Operand::const_value)
                    .collect::<Option<Vec<_>>>()?,
            )),
            Operand::List(ops) => Some(Value::list(
                ops.iter()
                    .map(Operand::const_value)
                    .collect::<Option<Vec<_>>>()?,
            )),
            Operand::Proj(op, k) => {
                let v = op.const_value()?;
                v.as_tuple().and_then(|t| t.get(*k).cloned())
            }
        }
    }

    /// Materialises the operand against a frame environment.
    fn resolve(&self, env: &[Value]) -> Value {
        match self {
            Operand::Slot(i) => env[*i].clone(),
            Operand::Const(v) => v.clone(),
            Operand::Tuple(ops) => Value::tuple(ops.iter().map(|o| o.resolve(env)).collect()),
            Operand::List(ops) => Value::list(ops.iter().map(|o| o.resolve(env)).collect()),
            Operand::Proj(op, k) => {
                let v = op.resolve(env);
                match v.as_tuple() {
                    Some(t) if *k < t.len() => t[*k].clone(),
                    _ => kernel_contract_violation("<proj>", "a tuple", &v),
                }
            }
        }
    }
}

/// One compiled body step; executing a step appends its result to the
/// frame environment.
#[derive(Clone)]
enum Step {
    /// Plain kernel call.
    Call { f: KernelCall, args: Vec<Operand> },
    /// `df n comp acc z xs` — a data farm.
    Df {
        workers: usize,
        comp: KernelCall,
        acc: KernelCall,
        seed: Operand,
        items: Operand,
    },
    /// `scm n split comp merge x` — split/compute/merge.
    Scm {
        workers: usize,
        split: KernelCall,
        comp: KernelCall,
        merge: KernelCall,
        input: Operand,
    },
    /// `tf n worker acc z tasks` — a task farm.
    Tf {
        workers: usize,
        worker: KernelCall,
        acc: KernelCall,
        seed: Operand,
        tasks: Operand,
    },
}

impl std::fmt::Debug for Step {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Step::Call { f: k, .. } => write!(f, "call {}", k.name),
            Step::Df { comp, workers, .. } => write!(f, "df[{workers}] {}", comp.name),
            Step::Scm { comp, workers, .. } => write!(f, "scm[{workers}] {}", comp.name),
            Step::Tf {
                worker, workers, ..
            } => write!(f, "tf[{workers}] {}", worker.name),
        }
    }
}

/// How a [`CompiledBody`] drives its skeleton steps: mirrors the four
/// host execution strategies so each step runs through exactly the
/// `skipper` entry point the strategy's backend would use.
enum Mode<'m> {
    Declarative,
    Threaded(Option<NonZeroUsize>),
    Pooled(&'m WorkerPool),
    Sharded(&'m [Arc<WorkerPool>]),
}

/// A compiled `itermem` loop body: steps over a frame environment,
/// ending in the `(state', output)` pair. Runs anywhere a handwritten
/// body runs — declaratively, on scoped threads, on a [`WorkerPool`],
/// across shards, or lowered onto the simulated machine — and its
/// skeleton steps call the same `skipper` entry points a handwritten
/// program would, making dispatch receipts comparable across the two.
#[derive(Clone)]
pub struct CompiledBody {
    steps: Arc<Vec<Step>>,
    result: (Operand, Operand),
}

impl std::fmt::Debug for CompiledBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.steps.iter()).finish()
    }
}

impl CompiledBody {
    fn run(&self, input: &(Value, Value), mode: &Mode<'_>) -> (Value, Value) {
        let mut env: Vec<Value> = vec![input.0.clone(), input.1.clone()];
        for step in self.steps.iter() {
            let v = match step {
                Step::Call { f, args } => {
                    let vals: Vec<Value> = args.iter().map(|a| a.resolve(&env)).collect();
                    f.call(&vals)
                }
                Step::Df {
                    workers,
                    comp,
                    acc,
                    seed,
                    items,
                } => {
                    let seed_v = seed.resolve(&env);
                    let items_v = items.resolve(&env);
                    let xs = match items_v.as_list() {
                        Some(xs) => xs.to_vec(),
                        None => kernel_contract_violation("<df items>", "a list", &items_v),
                    };
                    let prog = df_value(comp, acc, *workers, seed_v);
                    match mode {
                        Mode::Declarative => prog.run_declarative(&xs[..]),
                        Mode::Threaded(w) => prog.run_threaded(&xs[..], *w),
                        Mode::Pooled(pool) => prog.run_pooled(pool, &xs[..]),
                        Mode::Sharded(shards) => prog.run_sharded(shards, &xs[..]),
                    }
                }
                Step::Scm {
                    workers,
                    split,
                    comp,
                    merge,
                    input: inp,
                } => {
                    let x = inp.resolve(&env);
                    let prog = scm_value(split, comp, merge, *workers);
                    match mode {
                        Mode::Declarative => prog.run_declarative(&x),
                        Mode::Threaded(w) => prog.run_threaded(&x, *w),
                        Mode::Pooled(pool) => prog.run_pooled(pool, &x),
                        Mode::Sharded(shards) => prog.run_sharded(shards, &x),
                    }
                }
                Step::Tf {
                    workers,
                    worker,
                    acc,
                    seed,
                    tasks,
                } => {
                    let seed_v = seed.resolve(&env);
                    let tasks_v = tasks.resolve(&env);
                    let ts = match tasks_v.as_list() {
                        Some(ts) => ts.to_vec(),
                        None => kernel_contract_violation("<tf tasks>", "a list", &tasks_v),
                    };
                    let prog = tf_value(worker, acc, *workers, seed_v);
                    match mode {
                        Mode::Declarative => prog.run_declarative(ts),
                        Mode::Threaded(w) => prog.run_threaded(ts, *w),
                        Mode::Pooled(pool) => prog.run_pooled(pool, ts),
                        Mode::Sharded(shards) => prog.run_sharded(shards, ts),
                    }
                }
            };
            env.push(v);
        }
        (self.result.0.resolve(&env), self.result.1.resolve(&env))
    }
}

/// The concrete [`skipper::Df`] value a `df` step executes or lowers.
fn df_value(
    comp: &KernelCall,
    acc: &KernelCall,
    workers: usize,
    seed: Value,
) -> skipper::Df<
    impl Fn(&Value) -> Value + Clone + Send + Sync + 'static,
    impl Fn(Value, Value) -> Value + Clone + Send + Sync + 'static,
    Value,
> {
    let hint = comp.cost_hint;
    let c = comp.clone();
    let a = acc.clone();
    df(
        workers,
        move |x: &Value| c.call(std::slice::from_ref(x)),
        move |z: Value, y: Value| a.call(&[z, y]),
        seed,
    )
    .with_cost_hint(hint)
}

/// The concrete [`skipper::Scm`] value an `scm` step executes or lowers.
#[allow(clippy::type_complexity)]
fn scm_value(
    split: &KernelCall,
    comp: &KernelCall,
    merge: &KernelCall,
    workers: usize,
) -> skipper::Scm<
    impl Fn(&Value, usize) -> Vec<Value> + Clone + Send + Sync + 'static,
    impl Fn(Value) -> Value + Clone + Send + Sync + 'static,
    impl Fn(Vec<Value>) -> Value + Clone + Send + Sync + 'static,
> {
    let hint = comp.cost_hint;
    let s = split.clone();
    let c = comp.clone();
    let m = merge.clone();
    scm(
        workers,
        move |x: &Value, _n: usize| s.call_list(std::slice::from_ref(x)),
        move |f: Value| c.call(&[f]),
        move |parts: Vec<Value>| m.call(&[Value::list(parts)]),
    )
    .with_cost_hint(hint)
}

/// The concrete [`skipper::Tf`] value a `tf` step executes or lowers.
#[allow(clippy::type_complexity)]
fn tf_value(
    worker: &KernelCall,
    acc: &KernelCall,
    workers: usize,
    seed: Value,
) -> skipper::Tf<
    impl Fn(Value) -> (Vec<Value>, Option<Value>) + Clone + Send + Sync + 'static,
    impl Fn(Value, Value) -> Value + Clone + Send + Sync + 'static,
    Value,
> {
    let hint = worker.cost_hint;
    let w = worker.clone();
    let a = acc.clone();
    tf(
        workers,
        move |t: Value| {
            let r = w.call(&[t]);
            let Some(pair) = r.as_tuple().filter(|p| p.len() == 2) else {
                kernel_contract_violation(&w.name, "a (tasks, result) pair", &r)
            };
            let Some(ts) = pair[0].as_list() else {
                kernel_contract_violation(&w.name, "a task list", &pair[0])
            };
            (ts.to_vec(), Some(pair[1].clone()))
        },
        move |z: Value, y: Value| a.call(&[z, y]),
        seed,
    )
    .with_cost_hint(hint)
}

impl<'a> Skeleton<&'a (Value, Value)> for CompiledBody {
    type Output = (Value, Value);

    fn run_declarative(&self, input: &'a (Value, Value)) -> (Value, Value) {
        self.run(input, &Mode::Declarative)
    }

    fn run_threaded(
        &self,
        input: &'a (Value, Value),
        workers: Option<NonZeroUsize>,
    ) -> (Value, Value) {
        self.run(input, &Mode::Threaded(workers))
    }
}

impl<'a> PoolRun<&'a (Value, Value)> for CompiledBody {
    fn run_pooled(&self, pool: &WorkerPool, input: &'a (Value, Value)) -> (Value, Value) {
        self.run(input, &Mode::Pooled(pool))
    }
}

impl<'a> ShardRun<&'a (Value, Value)> for CompiledBody {
    fn run_sharded(&self, shards: &[Arc<WorkerPool>], input: &'a (Value, Value)) -> (Value, Value) {
        self.run(input, &Mode::Sharded(shards))
    }
}

/// Lowers the body onto the simulated machine. The environment crosses
/// the graph as a `Value::List`; each step contributes either one glue
/// node (kernel call) or a feed node, the ordinary farm fragment of the
/// step's skeleton (via its `SimLower` impl), and a store node fanning
/// the carried environment around the farm.
impl SimLowerBody<Value, Value> for CompiledBody {
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, skipper_exec::ExecError> {
        let entry_name = lw.fresh_name("dsl_env");
        let entry = lw.add_user_fn(&entry_name);
        lw.register_fn(&entry_name, |args| {
            let t = args[0]
                .as_tuple()
                .expect("loop body input is a (state, frame) tuple");
            vec![Value::list(vec![t[0].clone(), t[1].clone()])]
        });
        let mut prev = entry;
        for step in self.steps.iter() {
            prev = match step {
                Step::Call { f, args } => {
                    let name = lw.fresh_name(&format!("dsl_call_{}", f.name));
                    let node = lw.add_user_fn(&name);
                    let f = f.clone();
                    let args = args.clone();
                    lw.register_costed_fn(&name, f.cost_hint, None, move |ins| {
                        let env = env_of(&ins[0]);
                        let vals: Vec<Value> = args.iter().map(|a| a.resolve(&env)).collect();
                        let v = f.call(&vals);
                        vec![pushed(env, v)]
                    });
                    lw.connect(prev, node, 0, "env")?;
                    node
                }
                Step::Df {
                    workers,
                    comp,
                    acc,
                    seed,
                    items,
                } => {
                    let feed = feed_node(lw, prev, "dsl_df_feed", {
                        let seed = seed.clone();
                        let items = items.clone();
                        move |env| Value::tuple(vec![seed.resolve(env), items.resolve(env)])
                    })?;
                    let prog = df_value(comp, acc, *workers, Value::Unit);
                    let frag = SimLower::<&(Value, Vec<Value>)>::lower(&prog, lw)?;
                    lw.connect(feed, frag.entry, 0, "state-items")?;
                    store_node(lw, prev, frag.exit, "dsl_df_store")?
                }
                Step::Scm {
                    workers,
                    split,
                    comp,
                    merge,
                    input,
                } => {
                    let feed = feed_node(lw, prev, "dsl_scm_feed", {
                        let input = input.clone();
                        move |env| input.resolve(env)
                    })?;
                    let prog = scm_value(split, comp, merge, *workers);
                    let frag = SimLower::<&Value>::lower(&prog, lw)?;
                    lw.connect(feed, frag.entry, 0, "input")?;
                    store_scm_node(lw, prev, frag.exit, "dsl_scm_store")?
                }
                Step::Tf {
                    workers,
                    worker,
                    acc,
                    seed,
                    tasks,
                } => {
                    let feed = feed_node(lw, prev, "dsl_tf_feed", {
                        let seed = seed.clone();
                        let tasks = tasks.clone();
                        move |env| Value::tuple(vec![seed.resolve(env), tasks.resolve(env)])
                    })?;
                    let prog = tf_value(worker, acc, *workers, Value::Unit);
                    let frag = SimLower::<&(Value, Vec<Value>)>::lower(&prog, lw)?;
                    lw.connect(feed, frag.entry, 0, "state-tasks")?;
                    store_node(lw, prev, frag.exit, "dsl_tf_store")?
                }
            };
        }
        let finish_name = lw.fresh_name("dsl_result");
        let finish = lw.add_user_fn(&finish_name);
        let result = self.result.clone();
        lw.register_fn(&finish_name, move |ins| {
            let env = env_of(&ins[0]);
            vec![Value::tuple(vec![
                result.0.resolve(&env),
                result.1.resolve(&env),
            ])]
        });
        lw.connect(prev, finish, 0, "env")?;
        Ok(Fragment {
            entry,
            exit: finish,
        })
    }
}

/// Decodes the environment list a glue node receives.
fn env_of(v: &Value) -> Vec<Value> {
    v.as_list()
        .expect("dsl environment crosses the machine as a list")
        .to_vec()
}

/// The environment with one more slot.
fn pushed(mut env: Vec<Value>, v: Value) -> Value {
    env.push(v);
    Value::list(env)
}

/// Adds a feed node computing a farm's input from the environment.
fn feed_node(
    lw: &mut Lowering<'_>,
    prev: skipper_net::graph::NodeId,
    role: &str,
    f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
) -> Result<skipper_net::graph::NodeId, skipper_exec::ExecError> {
    let name = lw.fresh_name(role);
    let node = lw.add_user_fn(&name);
    lw.register_fn(&name, move |ins| {
        let env = env_of(&ins[0]);
        vec![f(&env)]
    });
    lw.connect(prev, node, 0, "env")?;
    Ok(node)
}

/// Adds a store node appending a `df`/`tf` farm's result to the carried
/// environment. Port 0 receives the farm's `(state', state')` pair (see
/// the farm loop-body lowerings in `skipper-exec`), port 1 the
/// environment fanned around the farm.
fn store_node(
    lw: &mut Lowering<'_>,
    env_src: skipper_net::graph::NodeId,
    farm_exit: skipper_net::graph::NodeId,
    role: &str,
) -> Result<skipper_net::graph::NodeId, skipper_exec::ExecError> {
    let name = lw.fresh_name(role);
    let node = lw.add_user_fn(&name);
    lw.register_fn(&name, |ins| {
        let pair = ins[0]
            .as_tuple()
            .expect("farm loop-body exit is a state pair");
        let env = env_of(&ins[1]);
        vec![pushed(env, pair[0].clone())]
    });
    lw.connect(farm_exit, node, 0, "state-pair")?;
    lw.connect(env_src, node, 1, "env")?;
    Ok(node)
}

/// As [`store_node`], for `scm` fragments (whose exit carries the merged
/// value directly).
fn store_scm_node(
    lw: &mut Lowering<'_>,
    env_src: skipper_net::graph::NodeId,
    merge_exit: skipper_net::graph::NodeId,
    role: &str,
) -> Result<skipper_net::graph::NodeId, skipper_exec::ExecError> {
    let name = lw.fresh_name(role);
    let node = lw.add_user_fn(&name);
    lw.register_fn(&name, |ins| {
        let env = env_of(&ins[1]);
        vec![pushed(env, ins[0].clone())]
    });
    lw.connect(merge_exit, node, 0, "merged")?;
    lw.connect(env_src, node, 1, "env")?;
    Ok(node)
}

/// A whole compiled program: the frame source, the compiled loop body,
/// the initial state, and the display sink.
pub struct CompiledProgram {
    source_name: String,
    source: SourceFn,
    source_arg: Value,
    body: CompiledBody,
    init: Value,
    show_name: String,
    show: KernelCall,
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledProgram")
            .field("source", &self.source_name)
            .field("body", &self.body)
            .field("show", &self.show_name)
            .finish()
    }
}

impl CompiledProgram {
    /// The program as a [`skipper`] value: `itermem(body, init)`. Runs
    /// on any backend a handwritten `IterLoop` runs on.
    #[must_use]
    pub fn loop_program(&self) -> IterLoop<CompiledBody, Value> {
        itermem(self.body.clone(), self.init.clone())
    }

    /// The compiled loop body.
    #[must_use]
    pub fn body(&self) -> &CompiledBody {
        &self.body
    }

    /// The loop's initial state.
    #[must_use]
    pub fn init(&self) -> &Value {
        &self.init
    }

    /// Materialises up to `max_frames` frames from the program's source
    /// kernel (applied to the program's source argument, per frame
    /// index), stopping early at end of stream.
    #[must_use]
    pub fn frames(&self, max_frames: usize) -> Vec<Value> {
        (0..max_frames as u64)
            .map_while(|i| (self.source)(&self.source_arg, i))
            .collect()
    }

    /// Applies the program's display sink to one loop output.
    #[must_use]
    pub fn show(&self, output: &Value) -> Value {
        self.show.call(std::slice::from_ref(output))
    }

    /// The registered name of the frame source.
    #[must_use]
    pub fn source_name(&self) -> &str {
        &self.source_name
    }
}

/// What a name denotes during compilation.
#[derive(Clone)]
enum CVal {
    /// A frame-environment value (constants fold into it).
    Op(Operand),
    /// A (possibly partially applied) kernel.
    Kernel(KernelCall),
    /// A frame source (only legal as `itermem`'s first argument).
    Source(String),
    /// A user-defined function (only legal as `itermem`'s loop).
    Fun(Expr),
    /// One of the four skeleton binders.
    Skel(SkelName),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SkelName {
    Df,
    Scm,
    Tf,
    IterMem,
}

fn err(span: Span, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(Stage::Expand, message, span)
}

/// The compilation context: the registry plus the compile-time meaning
/// of every name in scope.
struct Compiler<'r> {
    registry: &'r KernelRegistry,
    globals: BTreeMap<String, CVal>,
}

impl<'r> Compiler<'r> {
    fn new(registry: &'r KernelRegistry) -> Self {
        let mut globals = BTreeMap::new();
        globals.insert("df".to_string(), CVal::Skel(SkelName::Df));
        globals.insert("scm".to_string(), CVal::Skel(SkelName::Scm));
        globals.insert("tf".to_string(), CVal::Skel(SkelName::Tf));
        globals.insert("itermem".to_string(), CVal::Skel(SkelName::IterMem));
        for (name, k) in &registry.kernels {
            globals.insert(
                name.clone(),
                CVal::Kernel(KernelCall {
                    name: name.clone(),
                    f: Arc::clone(&k.f),
                    pre: Vec::new(),
                    remaining: k.arity,
                    cost_hint: k.cost_hint,
                }),
            );
        }
        for name in registry.sources.keys() {
            globals.insert(name.clone(), CVal::Source(name.clone()));
        }
        for (name, (_, v)) in &registry.constants {
            globals.insert(name.clone(), CVal::Op(Operand::Const(v.clone())));
        }
        Compiler { registry, globals }
    }

    fn lookup(
        &self,
        locals: &[(String, CVal)],
        name: &str,
        span: Span,
    ) -> Result<CVal, Diagnostic> {
        if let Some((_, v)) = locals.iter().rev().find(|(n, _)| n == name) {
            return Ok(v.clone());
        }
        self.globals.get(name).cloned().ok_or_else(|| {
            err(
                span,
                format!("`{name}` is not a kernel, constant or earlier binding"),
            )
        })
    }

    /// Walks an expression to its compile-time meaning. `steps` is the
    /// step list of the loop body being compiled, or `None` at top
    /// level (where kernel calls and skeletons cannot run).
    #[allow(clippy::too_many_lines)]
    fn walk(
        &self,
        expr: &Expr,
        locals: &mut Vec<(String, CVal)>,
        steps: &mut Option<&mut Vec<Step>>,
    ) -> Result<CVal, Diagnostic> {
        match &expr.kind {
            ExprKind::Var(name) => self.lookup(locals, name, expr.span),
            ExprKind::Int(i) => Ok(CVal::Op(Operand::Const(Value::Int(*i)))),
            ExprKind::Float(x) => Ok(CVal::Op(Operand::Const(Value::Float(*x)))),
            ExprKind::Bool(b) => Ok(CVal::Op(Operand::Const(Value::Bool(*b)))),
            ExprKind::Str(s) => Ok(CVal::Op(Operand::Const(Value::str(s)))),
            ExprKind::Unit => Ok(CVal::Op(Operand::Const(Value::Unit))),
            ExprKind::Tuple(es) => {
                let ops = es
                    .iter()
                    .map(|e| {
                        let v = self.walk(e, locals, steps)?;
                        self.operand(v, e.span)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(CVal::Op(Operand::tuple(ops)))
            }
            ExprKind::List(es) => {
                let ops = es
                    .iter()
                    .map(|e| {
                        let v = self.walk(e, locals, steps)?;
                        self.operand(v, e.span)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(CVal::Op(Operand::list(ops)))
            }
            ExprKind::Lambda(..) => Ok(CVal::Fun(expr.clone())),
            ExprKind::Let { pat, value, body } => {
                let v = self.walk(value, locals, steps)?;
                let mark = locals.len();
                self.bind(pat, v, locals)?;
                let r = self.walk(body, locals, steps);
                locals.truncate(mark);
                r
            }
            ExprKind::If(c, t, e) => {
                let cv = self.walk(c, locals, steps)?;
                match self.operand(cv, c.span)?.const_value() {
                    Some(Value::Bool(true)) => self.walk(t, locals, steps),
                    Some(Value::Bool(false)) => self.walk(e, locals, steps),
                    _ => Err(err(
                        c.span,
                        "`if` conditions must be compile-time constants in compiled programs \
                         (move per-frame branching into a kernel)",
                    )),
                }
            }
            ExprKind::BinOp(op, l, r) => {
                let lv = self.walk(l, locals, steps)?;
                let rv = self.walk(r, locals, steps)?;
                let lop = self.operand(lv, l.span)?;
                let rop = self.operand(rv, r.span)?;
                match (lop.const_value(), rop.const_value()) {
                    (Some(a), Some(b)) => Ok(CVal::Op(Operand::Const(fold_binop(
                        *op, &a, &b, expr.span,
                    )?))),
                    _ => Err(err(
                        expr.span,
                        "arithmetic on per-frame values is not supported in compiled \
                         programs (register a kernel for it)",
                    )),
                }
            }
            ExprKind::App(..) => self.walk_app(expr, locals, steps),
        }
    }

    /// A compile-time value as a frame operand (kernels, sources and
    /// functions are not first-class data in compiled programs).
    fn operand(&self, v: CVal, span: Span) -> Result<Operand, Diagnostic> {
        match v {
            CVal::Op(op) => Ok(op),
            CVal::Kernel(k) => Err(err(
                span,
                format!(
                    "kernel `{}` is not first-class data in compiled programs; apply it fully",
                    k.name
                ),
            )),
            CVal::Source(name) => Err(err(
                span,
                format!("source `{name}` may only be used as itermem's input function"),
            )),
            CVal::Fun(_) => Err(err(
                span,
                "functions are not first-class data in compiled programs; register a kernel",
            )),
            CVal::Skel(_) => Err(err(span, "skeletons must be fully applied")),
        }
    }

    fn bind(
        &self,
        pat: &Pattern,
        v: CVal,
        locals: &mut Vec<(String, CVal)>,
    ) -> Result<(), Diagnostic> {
        match pat {
            Pattern::Var(name, _) => {
                locals.push((name.clone(), v));
                Ok(())
            }
            Pattern::Wildcard(_) | Pattern::Unit(_) => Ok(()),
            Pattern::Tuple(ps, span) => {
                let op = self.operand(v, *span)?;
                for (i, p) in ps.iter().enumerate() {
                    self.bind(p, CVal::Op(Operand::proj(op.clone(), i)), locals)?;
                }
                Ok(())
            }
        }
    }

    /// An argument that must be a fully-applied-later kernel of
    /// `remaining` parameters (skeleton function positions).
    fn kernel_arg(
        &self,
        e: &Expr,
        locals: &mut Vec<(String, CVal)>,
        steps: &mut Option<&mut Vec<Step>>,
        remaining: usize,
        role: &str,
    ) -> Result<KernelCall, Diagnostic> {
        match self.walk(e, locals, steps)? {
            CVal::Kernel(k) if k.remaining == remaining => Ok(k),
            CVal::Kernel(k) => Err(err(
                e.span,
                format!(
                    "{role} must be a kernel of {remaining} remaining parameter(s); `{}` has {}",
                    k.name, k.remaining
                ),
            )),
            CVal::Fun(_) => Err(err(
                e.span,
                format!("{role} must be a registered kernel, not an inline function"),
            )),
            _ => Err(err(e.span, format!("{role} must be a registered kernel"))),
        }
    }

    /// A skeleton's degree argument: a compile-time positive integer.
    fn degree_arg(
        &self,
        e: &Expr,
        locals: &mut Vec<(String, CVal)>,
        steps: &mut Option<&mut Vec<Step>>,
    ) -> Result<usize, Diagnostic> {
        let v = self.walk(e, locals, steps)?;
        match self.operand(v, e.span)?.const_value() {
            Some(Value::Int(n)) if n > 0 => Ok(n as usize),
            Some(v) => Err(err(
                e.span,
                format!("a skeleton's degree must be a positive integer constant, got {v:?}"),
            )),
            None => Err(err(
                e.span,
                "a skeleton's degree must be a compile-time constant",
            )),
        }
    }

    fn operand_arg(
        &self,
        e: &Expr,
        locals: &mut Vec<(String, CVal)>,
        steps: &mut Option<&mut Vec<Step>>,
    ) -> Result<Operand, Diagnostic> {
        let v = self.walk(e, locals, steps)?;
        self.operand(v, e.span)
    }

    #[allow(clippy::too_many_lines)]
    fn walk_app(
        &self,
        expr: &Expr,
        locals: &mut Vec<(String, CVal)>,
        steps: &mut Option<&mut Vec<Step>>,
    ) -> Result<CVal, Diagnostic> {
        let (head, args) = expr.uncurry_app();
        let head_v = self.walk(head, locals, steps)?;
        match head_v {
            CVal::Kernel(k) => {
                if args.len() < k.remaining {
                    // Partial application closes over constants only:
                    // the partially applied kernel must be meaningful
                    // away from any particular frame (e.g. as an scm
                    // split function on the simulated machine).
                    let mut k = k;
                    for a in args {
                        let op = self.operand_arg(a, locals, steps)?;
                        let Some(v) = op.const_value() else {
                            return Err(err(
                                a.span,
                                "arguments of a partially applied kernel must be \
                                 compile-time constants",
                            ));
                        };
                        k.pre.push(v);
                        k.remaining -= 1;
                    }
                    return Ok(CVal::Kernel(k));
                }
                if args.len() > k.remaining {
                    return Err(err(
                        expr.span,
                        format!(
                            "kernel `{}` takes {} argument(s), got {}",
                            k.name,
                            k.remaining,
                            args.len()
                        ),
                    ));
                }
                let arg_ops = args
                    .iter()
                    .map(|a| self.operand_arg(a, locals, steps))
                    .collect::<Result<Vec<_>, _>>()?;
                match steps {
                    Some(steps) => {
                        steps.push(Step::Call {
                            f: k,
                            args: arg_ops,
                        });
                        Ok(CVal::Op(Operand::Slot(1 + steps.len())))
                    }
                    None => Err(err(
                        expr.span,
                        "kernels can only be called inside the itermem loop body",
                    )),
                }
            }
            CVal::Skel(skel) => self.walk_skel(skel, expr, &args, locals, steps),
            CVal::Source(name) => Err(err(
                head.span,
                format!("source `{name}` may only be used as itermem's input function"),
            )),
            CVal::Fun(_) => Err(err(
                head.span,
                "calling user-defined functions inside compiled programs is not \
                 supported; register a kernel or inline the definition",
            )),
            CVal::Op(_) => Err(err(head.span, "this expression is not a function")),
        }
    }

    fn walk_skel(
        &self,
        skel: SkelName,
        expr: &Expr,
        args: &[&Expr],
        locals: &mut Vec<(String, CVal)>,
        steps: &mut Option<&mut Vec<Step>>,
    ) -> Result<CVal, Diagnostic> {
        if skel == SkelName::IterMem {
            return Err(err(
                expr.span,
                "nested `itermem` is not supported; a program has exactly one \
                 itermem, at `main`",
            ));
        }
        if args.len() != 5 {
            return Err(err(
                expr.span,
                format!(
                    "skeletons must be fully applied in compiled programs (expected \
                     5 arguments, got {})",
                    args.len()
                ),
            ));
        }
        let workers = self.degree_arg(args[0], locals, steps)?;
        let step = match skel {
            SkelName::Df => Step::Df {
                workers,
                comp: self.kernel_arg(args[1], locals, steps, 1, "a df compute function")?,
                acc: self.kernel_arg(args[2], locals, steps, 2, "a df accumulator")?,
                seed: self.operand_arg(args[3], locals, steps)?,
                items: self.operand_arg(args[4], locals, steps)?,
            },
            SkelName::Scm => Step::Scm {
                workers,
                split: self.kernel_arg(args[1], locals, steps, 1, "an scm split function")?,
                comp: self.kernel_arg(args[2], locals, steps, 1, "an scm compute function")?,
                merge: self.kernel_arg(args[3], locals, steps, 1, "an scm merge function")?,
                input: self.operand_arg(args[4], locals, steps)?,
            },
            SkelName::Tf => Step::Tf {
                workers,
                worker: self.kernel_arg(args[1], locals, steps, 1, "a tf worker function")?,
                acc: self.kernel_arg(args[2], locals, steps, 2, "a tf accumulator")?,
                seed: self.operand_arg(args[3], locals, steps)?,
                tasks: self.operand_arg(args[4], locals, steps)?,
            },
            SkelName::IterMem => unreachable!("handled above"),
        };
        match steps {
            Some(steps) => {
                steps.push(step);
                Ok(CVal::Op(Operand::Slot(1 + steps.len())))
            }
            None => Err(err(
                expr.span,
                "skeletons may only be applied inside the itermem loop body",
            )),
        }
    }

    /// Compiles the loop function (one parameter, the `(state, frame)`
    /// pair) to a [`CompiledBody`].
    fn compile_body(&self, fun: &Expr) -> Result<CompiledBody, Diagnostic> {
        let ExprKind::Lambda(pat, body) = &fun.kind else {
            return Err(err(
                fun.span,
                "the itermem loop must be a function of the (state, frame) pair",
            ));
        };
        let mut locals: Vec<(String, CVal)> = Vec::new();
        match pat {
            Pattern::Tuple(ps, _) if ps.len() == 2 => {
                self.bind(&ps[0], CVal::Op(Operand::Slot(0)), &mut locals)?;
                self.bind(&ps[1], CVal::Op(Operand::Slot(1)), &mut locals)?;
            }
            Pattern::Var(name, _) => {
                locals.push((
                    name.clone(),
                    CVal::Op(Operand::Tuple(vec![Operand::Slot(0), Operand::Slot(1)])),
                ));
            }
            Pattern::Wildcard(_) => {}
            other => {
                return Err(err(
                    other.span(),
                    "the loop parameter must be a (state, frame) pair pattern or a variable",
                ));
            }
        }
        let mut step_list: Vec<Step> = Vec::new();
        let mut steps = Some(&mut step_list);
        let result_v = self.walk(body, &mut locals, &mut steps)?;
        let op = self.operand(result_v, body.span)?;
        let result = (Operand::proj(op.clone(), 0), Operand::proj(op, 1));
        Ok(CompiledBody {
            steps: Arc::new(step_list),
            result,
        })
    }

    /// Walks a top-level item body (no steps may be emitted here).
    fn walk_top(&self, e: &Expr) -> Result<CVal, Diagnostic> {
        let mut locals = Vec::new();
        let mut steps: Option<&mut Vec<Step>> = None;
        self.walk(e, &mut locals, &mut steps)
    }

    /// A top-level value that must be a compile-time constant.
    fn const_arg(&self, e: &Expr, what: &str) -> Result<Value, Diagnostic> {
        let v = self.walk_top(e)?;
        let op = self.operand(v, e.span)?;
        op.const_value()
            .ok_or_else(|| err(e.span, format!("{what} must be a constant expression")))
    }
}

/// Constant-folds a binary operation on two literal values.
fn fold_binop(
    op: crate::ast::BinOp,
    a: &Value,
    b: &Value,
    span: Span,
) -> Result<Value, Diagnostic> {
    use crate::ast::BinOp as B;
    let bad = || {
        err(
            span,
            format!("operator `{op}` is not defined on {a:?} and {b:?} at compile time"),
        )
    };
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            B::Add => Value::Int(x.wrapping_add(*y)),
            B::Sub => Value::Int(x.wrapping_sub(*y)),
            B::Mul => Value::Int(x.wrapping_mul(*y)),
            B::Div => {
                if *y == 0 {
                    return Err(err(span, "division by zero in constant expression"));
                }
                Value::Int(x.wrapping_div(*y))
            }
            B::Eq => Value::Bool(x == y),
            B::Ne => Value::Bool(x != y),
            B::Lt => Value::Bool(x < y),
            B::Gt => Value::Bool(x > y),
            B::Le => Value::Bool(x <= y),
            B::Ge => Value::Bool(x >= y),
        }),
        (Value::Float(x), Value::Float(y)) => Ok(match op {
            B::Add => Value::Float(x + y),
            B::Sub => Value::Float(x - y),
            B::Mul => Value::Float(x * y),
            B::Div => Value::Float(x / y),
            B::Eq => Value::Bool(x == y),
            B::Ne => Value::Bool(x != y),
            B::Lt => Value::Bool(x < y),
            B::Gt => Value::Bool(x > y),
            B::Le => Value::Bool(x <= y),
            B::Ge => Value::Bool(x >= y),
        }),
        (Value::Bool(x), Value::Bool(y)) => match op {
            B::Eq => Ok(Value::Bool(x == y)),
            B::Ne => Ok(Value::Bool(x != y)),
            _ => Err(bad()),
        },
        _ => Err(bad()),
    }
}

/// Compiles a type-checked program against `registry` into a
/// [`CompiledProgram`].
///
/// The program is type-checked here, first, against the registry's
/// declared signatures ([`KernelRegistry::type_env`]); compilation never
/// sees untyped text. `main` must be a fully applied
/// `itermem read loop show z0 x` where `read` is a registered source,
/// `loop` a unary function over the `(state, frame)` pair, `show` a
/// registered unary kernel, and `z0`/`x` constant expressions.
///
/// # Errors
///
/// A spanned [`Diagnostic`] for any type error or any construct outside
/// the compilable fragment (see the module docs); malformed input never
/// panics.
pub fn compile_program(
    registry: &KernelRegistry,
    program: &Program,
) -> Result<CompiledProgram, Diagnostic> {
    let env = registry.type_env()?;
    check_program(&env, program)?;
    let mut compiler = Compiler::new(registry);
    let mut main = None;
    for item in &program.items {
        if item.name == "main" {
            main = Some(item);
            continue;
        }
        let meaning = if item.params.is_empty() && !matches!(item.body.kind, ExprKind::Lambda(..)) {
            compiler.walk_top(&item.body)?
        } else {
            CVal::Fun(item.as_lambda())
        };
        compiler.globals.insert(item.name.clone(), meaning);
    }
    let Some(main) = main else {
        return Err(Diagnostic::global(
            Stage::Expand,
            "program has no `main`; expected `let main = itermem read loop show z0 x;;`",
        ));
    };
    if !main.params.is_empty() {
        return Err(err(main.span, "`main` must not take parameters"));
    }
    let (head, args) = main.body.uncurry_app();
    let is_itermem = matches!(compiler.walk_top(head), Ok(CVal::Skel(SkelName::IterMem)));
    if !is_itermem || args.len() != 5 {
        return Err(err(
            main.body.span,
            "`main` must be a fully applied `itermem read loop show z0 x`",
        ));
    }
    let source_name = match compiler.walk_top(args[0])? {
        CVal::Source(name) => name,
        _ => {
            return Err(err(
                args[0].span,
                "itermem's input must be a registered frame source",
            ));
        }
    };
    let source = Arc::clone(&compiler.registry.sources[&source_name].f);
    let loop_fun = match compiler.walk_top(args[1])? {
        CVal::Fun(f) => f,
        CVal::Kernel(k) => {
            return Err(err(
                args[1].span,
                format!(
                    "the itermem loop must be a DSL function so it can be compiled; \
                     `{}` is an opaque kernel",
                    k.name
                ),
            ));
        }
        _ => {
            return Err(err(
                args[1].span,
                "the itermem loop must be a function of the (state, frame) pair",
            ));
        }
    };
    let body = compiler.compile_body(&loop_fun)?;
    let show = match compiler.walk_top(args[2])? {
        CVal::Kernel(k) if k.remaining == 1 => k,
        _ => {
            return Err(err(
                args[2].span,
                "itermem's display must be a registered kernel of one parameter",
            ));
        }
    };
    let init = compiler.const_arg(args[3], "the initial state")?;
    let source_arg = compiler.const_arg(args[4], "the source argument")?;
    Ok(CompiledProgram {
        source_name,
        source,
        source_arg,
        body,
        init,
        show_name: show.name.clone(),
        show,
    })
}

/// Parses, type-checks and compiles DSL source text in one step — the
/// `skipperc` front door.
///
/// # Errors
///
/// The first [`Diagnostic`] from any stage (lex/parse/type/compile).
pub fn compile_source(
    registry: &KernelRegistry,
    source: &str,
) -> Result<CompiledProgram, Diagnostic> {
    let program = crate::parser::parse_program(source)?;
    compile_program(registry, &program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper::Backend;
    use skipper_exec::SimBackend;

    fn int(v: &Value) -> i64 {
        v.as_int().expect("int value")
    }

    /// A registry of small integer kernels exercising every step shape.
    fn registry() -> KernelRegistry {
        let mut r = KernelRegistry::new();
        // Source: frame i is the integer i (first 4 frames).
        r.register_source("ints", "unit -> int", |_, i| {
            (i < 4).then(|| Value::Int(i as i64))
        })
        .expect("source registers");
        // Source: frame i is the list [i, i+1, i+2].
        r.register_source("lists", "unit -> int list", |_, i| {
            let i = i as i64;
            (i < 3).then(|| Value::list(vec![Value::Int(i), Value::Int(i + 1), Value::Int(i + 2)]))
        })
        .expect("source registers");
        r.register("double", "int -> int", |a| Value::Int(2 * int(&a[0])))
            .expect("kernel registers");
        r.register("add", "int -> int -> int", |a| {
            Value::Int(int(&a[0]) + int(&a[1]))
        })
        .expect("kernel registers");
        // nsplit k x = [x, x+1, ..., x+k-1]
        r.register("nsplit", "int -> int -> int list", |a| {
            let (k, x) = (int(&a[0]), int(&a[1]));
            Value::list((0..k).map(|j| Value::Int(x + j)).collect())
        })
        .expect("kernel registers");
        r.register("sum_list", "int list -> int", |a| {
            Value::Int(a[0].as_list().expect("list").iter().map(int).sum())
        })
        .expect("kernel registers");
        r.register("show", "int -> unit", |_| Value::Unit)
            .expect("kernel registers");
        r
    }

    const SCM_SRC: &str = "\
let loop (z, x) =
  let y = scm 2 (nsplit 2) double sum_list x in
  let z2 = add z y in
  (z2, y);;
let main = itermem ints loop show 0 ();;
";

    const DF_SRC: &str = "\
let loop (z, xs) = (df 2 double add z xs, z);;
let main = itermem lists loop show 0 ();;
";

    fn expect_compile(src: &str) -> CompiledProgram {
        match compile_source(&registry(), src) {
            Ok(p) => p,
            Err(d) => panic!("compiles: {}", d.render(src)),
        }
    }

    fn expect_diag(src: &str) -> Diagnostic {
        compile_source(&registry(), src).expect_err("must be rejected")
    }

    #[test]
    fn scm_program_runs_on_every_host_strategy() {
        let prog = expect_compile(SCM_SRC);
        let frames = prog.frames(10);
        assert_eq!(frames.len(), 4, "source ends after 4 frames");
        // Frame x: split -> [x, x+1], double -> [2x, 2x+2], sum -> 4x+2.
        let want_ys: Vec<i64> = (0..4).map(|x| 4 * x + 2).collect();
        let want_z: i64 = want_ys.iter().sum();
        let lp = prog.loop_program();
        let (z, ys) = lp.run_declarative(frames.clone());
        assert_eq!(int(&z), want_z);
        assert_eq!(ys.iter().map(int).collect::<Vec<_>>(), want_ys);
        let (z2, ys2) = lp.run_threaded(frames.clone(), NonZeroUsize::new(2));
        assert_eq!((z2, ys2), (z.clone(), ys.clone()));
        let pool = WorkerPool::new(NonZeroUsize::new(2).expect("nonzero"));
        let mut zs = prog.init().clone();
        let mut ys3 = Vec::new();
        for f in &frames {
            let (z2, y) = prog.body().run_pooled(&pool, &(zs, f.clone()));
            zs = z2;
            ys3.push(y);
        }
        assert_eq!((zs, ys3), (z, ys));
    }

    #[test]
    fn df_program_matches_hand_computation() {
        let prog = expect_compile(DF_SRC);
        let frames = prog.frames(10);
        assert_eq!(frames.len(), 3);
        let (z, ys) = prog.loop_program().run_declarative(frames);
        // Frame i contributes 2*(i + i+1 + i+2) = 6i + 6 to the running sum.
        assert_eq!(int(&z), 6 + 12 + 18);
        // Output is the state *before* the frame's farm.
        assert_eq!(ys.iter().map(int).collect::<Vec<_>>(), vec![0, 6, 18]);
    }

    #[test]
    fn compiled_body_lowers_onto_the_simulated_machine() {
        for src in [SCM_SRC, DF_SRC] {
            let prog = expect_compile(src);
            let frames = prog.frames(10);
            let want = prog.loop_program().run_declarative(frames.clone());
            let got = SimBackend::ring(3)
                .run(&prog.loop_program(), frames)
                .expect("simulates");
            assert_eq!(got, want, "sim output differs for {src}");
        }
    }

    #[test]
    fn show_applies_the_display_kernel() {
        let prog = expect_compile(SCM_SRC);
        assert_eq!(prog.show(&Value::Int(7)), Value::Unit);
        assert_eq!(prog.source_name(), "ints");
    }

    #[test]
    fn inline_functions_are_rejected_with_a_span() {
        let d = expect_diag(
            "let loop (z, x) = (z, scm 2 (nsplit 2) (fun v -> v) sum_list x);;\n\
             let main = itermem ints loop show 0 ();;\n",
        );
        assert_eq!(d.stage, Stage::Expand);
        assert!(d.span.is_some(), "diagnostic carries a span");
        assert!(
            d.message.contains("registered kernel"),
            "unexpected message: {}",
            d.message
        );
    }

    #[test]
    fn per_frame_arithmetic_is_rejected() {
        let d = expect_diag(
            "let loop (z, x) = (z, x + 1);;\nlet main = itermem ints loop show 0 ();;\n",
        );
        assert_eq!(d.stage, Stage::Expand);
        assert!(d.message.contains("register a kernel"), "{}", d.message);
    }

    #[test]
    fn non_constant_partial_application_is_rejected() {
        let d = expect_diag(
            "let loop (z, x) = (z, scm 2 (nsplit x) double sum_list x);;\n\
             let main = itermem ints loop show 0 ();;\n",
        );
        assert!(
            d.message.contains("compile-time constants"),
            "{}",
            d.message
        );
    }

    #[test]
    fn non_constant_degree_is_rejected() {
        let d = expect_diag(
            "let loop (z, xs) = (df xs double add z xs, z);;\n\
             let main = itermem lists loop show 0 ();;\n",
        );
        // `df xs …` fails typing (degree must be int), so the guard that
        // matters is: a *well-typed* frame-dependent degree is rejected at
        // compile stage.
        let d2 = expect_diag(
            "let loop (z, x) = (z, df x double add 0 [1]);;\n\
             let main = itermem ints loop show 0 ();;\n",
        );
        assert!(d.stage == Stage::Type || d.stage == Stage::Expand);
        assert_eq!(d2.stage, Stage::Expand);
        assert!(
            d2.message.contains("compile-time constant"),
            "{}",
            d2.message
        );
    }

    #[test]
    fn missing_main_is_reported() {
        let d = expect_diag("let x = 1;;\n");
        assert!(d.message.contains("no `main`"), "{}", d.message);
    }

    #[test]
    fn non_itermem_main_is_reported() {
        let d = expect_diag("let main = show 1;;\n");
        assert!(
            d.message.contains("fully applied `itermem"),
            "{}",
            d.message
        );
    }

    #[test]
    fn constant_folding_covers_arithmetic_and_division_by_zero() {
        let prog = expect_compile(
            "let k = (2 + 3) * 4;;\n\
             let loop (z, x) = (z, k);;\n\
             let main = itermem ints loop show 0 ();;\n",
        );
        let (_, ys) = prog.loop_program().run_declarative(prog.frames(1));
        assert_eq!(int(&ys[0]), 20);
        let d = expect_diag(
            "let k = 1 / 0;;\nlet loop (z, x) = (z, k);;\n\
             let main = itermem ints loop show 0 ();;\n",
        );
        assert!(d.message.contains("division by zero"), "{}", d.message);
    }

    #[test]
    fn parse_and_type_errors_surface_as_diagnostics() {
        let parse = expect_diag("let main = ;;\n");
        assert_eq!(parse.stage, Stage::Parse);
        let ty = expect_diag("let main = itermem ints show show 0 ();;\n");
        assert_eq!(ty.stage, Stage::Type);
    }
}
