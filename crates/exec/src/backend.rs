//! The simulator backend: running [`Skeleton`] programs through the full
//! paper pipeline.
//!
//! [`SimBackend`] is the third execution strategy for a skeleton program
//! (after `skipper::SeqBackend` and `skipper::ThreadBackend`): it lowers
//! the program through [`skipper_net::pnt`] template expansion, SynDEx
//! scheduling and macro-code generation, then interprets the generated
//! executive on the simulated Transputer machine with real application
//! values — so the one-line program that runs on host threads also runs,
//! unmodified, on the modelled parallel machine.
//!
//! ```
//! use skipper::{df, Backend, SeqBackend};
//! use skipper_exec::SimBackend;
//!
//! let farm = df(4, |x: &i64| x * x, |z: i64, y| z + y, 0i64);
//! let xs: Vec<i64> = (1..=10).collect();
//! let simulated = SimBackend::ring(5).run(&farm, &xs[..]).expect("farm runs");
//! assert_eq!(simulated, SeqBackend.run(&farm, &xs[..]));
//! ```
//!
//! # Prepare once, run many
//!
//! Exactly as SKiPPER compiles offline and executes per frame at video
//! rate, [`Backend::prepare`] performs the **whole compilation pipeline
//! once** — lowering, SynDEx scheduling, macro-code generation — and
//! hands back a [`SimExecutable`] (or [`SimLoopExecutable`] for `itermem`
//! programs) whose `run` only resets per-run simulator state and
//! re-interprets the cached macro-code. A frame loop over a prepared
//! executable therefore pays lowering and scheduling exactly once (the
//! [`lowering_count`] probe pins this), while `Backend::run` remains the
//! prepare-then-run convenience for one-shot execution:
//!
//! ```
//! use skipper::{df, Backend, Executable, SeqBackend};
//! use skipper_exec::SimBackend;
//!
//! let farm = df(3, |x: &i64| x + 1, |z: i64, y| z + y, 0i64);
//! let backend = SimBackend::ring(4);
//! let exec = backend.prepare(&farm); // lower + schedule + codegen once
//! for frame in 1..=3i64 {
//!     let items: Vec<i64> = (0..frame).collect();
//!     let simulated = exec.run(&items[..]).expect("prepared farm runs");
//!     assert_eq!(simulated, SeqBackend.run(&farm, &items[..]));
//! }
//! ```
//!
//! Lowering notes (all consistent with the paper's side conditions):
//!
//! - `df`/`tf` results are accumulated in **arrival order** by the farm
//!   master, so simulated results equal the declarative semantics only for
//!   commutative-associative accumulation functions — the same requirement
//!   the paper states for the parallel implementation;
//! - farms lower onto either farm PNT shape
//!   ([`SimBackend::with_farm_shape`]): the star expansion addresses
//!   workers point-to-point over the simulator's store-and-forward links,
//!   while [`skipper_net::FarmShape::Ring`] expands Fig. 1's explicit
//!   `M->W`/`W->M` router processes, co-locates them with their workers,
//!   and relays farm traffic hop-by-hop along the chain at application
//!   level;
//! - an `scm` split function must produce exactly `workers` fragments
//!   (the process network has one statically-placed compute node per
//!   fragment); any other count fails the run with
//!   [`ExecError::BadShape`];
//! - a `tf` root task's subtree is elaborated depth-first on the worker it
//!   is dispatched to (dynamic balancing happens across root tasks);
//! - `itermem` programs run one graph iteration per frame, with the state
//!   threaded through a `MEM` node exactly as in Fig. 4. Every skeleton of
//!   the repertoire can head the loop body over the `(state, frame)`
//!   tuple: `scm(...)` bodies split the tuple itself, while `df(...)` /
//!   `tf(...)` bodies treat the frame as the iteration's item (task) list
//!   and use the **carried state as the accumulator seed** (the
//!   executive's seeded-master protocol; outputs are the updated
//!   accumulator). A nested `itermem(...)` body — whose trip count is
//!   data-dependent — is elaborated sequentially on its host processor,
//!   like a `tf` subtree. A bare [`Pure`] body cannot lower — its
//!   by-reference input has no executive encoding — and fails with the
//!   dedicated [`ExecError::PureLoopBody`];
//! - a program's `with_cost_hint` declaration (e.g.
//!   [`skipper::Df::with_cost_hint`]) is plumbed through the lowering:
//!   stamped onto the lowered worker nodes as WCET hints for the SynDEx
//!   scheduler (inspectable via [`SimBackend::plan`]) and registered as
//!   the function's per-call cost model
//!   ([`Registry::register_with_cost`]) for the executive's virtual
//!   clock. An **argument-dependent** `with_cost_model` declaration
//!   (e.g. [`skipper::Df::with_cost_model`]) goes further: the executive
//!   evaluates the model on each actual argument's [`Value::size`], and
//!   `model(1)` serves as the static WCET hint for the scheduler.

use crate::executive::{run_prepared, ExecConfig, ExecError, ExecReport, SimStatics};
use crate::registry::Registry;
use crate::sim_value::SimValue;
use crate::value::Value;
use skipper::{Df, IterLoop, Pure, Scm, Skeleton, Tf, Then};
use skipper_net::dtype::DataType;
use skipper_net::graph::{NodeId, NodeKind, ProcessNetwork};
use skipper_net::pnt::{expand_df, expand_itermem, expand_scm, DfTypes, IterMemTypes, ScmTypes};
use skipper_net::FarmShape;
use skipper_syndex::schedule::{schedule_with, Schedule, Strategy};
use skipper_syndex::Architecture;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use transvision::sim::SimConfig;
use transvision::topology::ProcId;

fn internal(e: impl std::fmt::Display) -> ExecError {
    ExecError::Internal(e.to_string())
}

fn decode<T: SimValue>(v: &Value, what: &str) -> Result<T, ExecError> {
    T::from_value(v).ok_or_else(|| {
        ExecError::Internal(format!("{what}: cannot decode {} value", v.type_name()))
    })
}

/// One fragment of a lowered program: a subgraph consuming its encoded
/// input on `entry` port 0 and producing its encoded output on `exit`
/// port 0.
#[derive(Debug, Clone, Copy)]
pub struct Fragment {
    /// Dataflow entry node.
    pub entry: NodeId,
    /// Dataflow exit node.
    pub exit: NodeId,
}

/// Shared state threaded through a lowering pass.
pub struct Lowering<'a> {
    net: &'a mut ProcessNetwork,
    reg: &'a mut Registry,
    farm_init: &'a mut HashMap<usize, Value>,
    workers: &'a mut Vec<NodeId>,
    /// `(router, worker)` co-location pairs: each ring router must be
    /// mapped onto its worker's processor (Fig. 1 places one `M->W`/`W->M`
    /// pair per worker processor).
    colocated: &'a mut Vec<(NodeId, NodeId)>,
    /// Farm PNT shape the backend lowers with.
    shape: FarmShape,
    counter: &'a mut usize,
}

impl Lowering<'_> {
    /// A registry/function name unique within this lowering.
    fn fresh(&mut self, role: &str) -> String {
        let id = *self.counter;
        *self.counter += 1;
        format!("p{id}_{role}")
    }

    /// Records the ring routers of a freshly expanded farm as co-located
    /// with their workers (no-op for star farms, which have none).
    fn colocate_routers(&mut self, h: &skipper_net::pnt::FarmHandles) {
        for routers in [&h.routers_mw, &h.routers_wm] {
            for (i, &r) in routers.iter().enumerate() {
                self.colocated.push((r, h.workers[i]));
            }
        }
    }

    /// Registers `f` under `name`, carrying the program's declared cost
    /// into the executive's cost model
    /// ([`Registry::register_with_cost`]) when one was given. An
    /// argument-dependent `cost_model` wins over a constant `cost_hint`:
    /// the model is evaluated on the first actual argument's
    /// [`Value::size`] at every call.
    fn register_costed(
        &mut self,
        name: &str,
        cost_hint: u64,
        cost_model: Option<skipper::CostModel>,
        f: impl Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
    ) {
        if let Some(model) = cost_model {
            self.reg.register_with_cost(name, f, move |args| {
                model(args.first().map(Value::size).unwrap_or(0))
            });
        } else if cost_hint > 0 {
            self.reg.register_with_cost(name, f, move |_| cost_hint);
        } else {
            self.reg.register(name, f);
        }
    }

    /// Stamps the program's declared per-call cost onto the lowered
    /// compute nodes, so the SynDEx scheduler sees real WCET hints
    /// instead of zero-cost placeholders. With an argument-dependent
    /// model, the static hint is the model evaluated at size 1 (or the
    /// constant hint when that is larger): the scheduler has no actual
    /// arguments to measure, so a nominal unit-size argument stands in.
    fn hint_nodes(
        &mut self,
        nodes: &[NodeId],
        cost_hint: u64,
        cost_model: Option<skipper::CostModel>,
    ) {
        let effective = cost_model.map(|m| m(1)).unwrap_or(0).max(cost_hint);
        if effective > 0 {
            for &node in nodes {
                self.net.set_cost_hint(node, effective);
            }
        }
    }

    // The public construction surface for out-of-crate lowerings: the
    // DSL compiler (`skipper-lang`'s `compile` module) lowers its
    // compiled loop bodies through [`SimLowerBody`] like any skeleton,
    // but lives outside this crate. These accessors expose exactly the
    // node/edge/registry operations the in-crate lowerings use — a
    // custom body is glue nodes around fragments produced by the
    // [`SimLower`] impls of the ordinary skeleton shapes.

    /// A registry/function name unique within this lowering.
    pub fn fresh_name(&mut self, role: &str) -> String {
        self.fresh(role)
    }

    /// Adds a user-function node named `name` to the network. The
    /// function itself must be registered under the same name
    /// ([`Lowering::register_fn`] or [`Lowering::register_costed_fn`]).
    pub fn add_user_fn(&mut self, name: &str) -> NodeId {
        self.net.add_node(NodeKind::UserFn(name.to_string()), name)
    }

    /// Connects `from`'s output port 0 to `to`'s input port `to_port`
    /// carrying a `ty`-named data type.
    ///
    /// # Errors
    ///
    /// [`ExecError::Internal`] if either endpoint does not exist or the
    /// input port is already driven.
    pub fn connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        to_port: usize,
        ty: &str,
    ) -> Result<(), ExecError> {
        self.net
            .add_data_edge(from, 0, to, to_port, named(ty))
            .map_err(internal)
    }

    /// Registers `f` under `name` with no cost declaration.
    pub fn register_fn(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
    ) {
        self.reg.register(name, f);
    }

    /// Registers `f` under `name`, carrying a cost declaration exactly
    /// as the in-crate skeleton lowerings do (see the private
    /// `register_costed`): an argument-dependent `cost_model` wins over
    /// a constant `cost_hint`.
    pub fn register_costed_fn(
        &mut self,
        name: &str,
        cost_hint: u64,
        cost_model: Option<skipper::CostModel>,
        f: impl Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
    ) {
        self.register_costed(name, cost_hint, cost_model, f);
    }
}

/// A program shape [`SimBackend`] knows how to lower into a process
/// network: [`Df`], [`Scm`], [`Tf`], [`Pure`] and [`Then`] pipelines of
/// them ([`IterLoop`] is handled at the top level, since a stream loop
/// wraps the whole graph).
pub trait SimLower<I>: Skeleton<I> {
    /// Expands this program into `lw`, registering its sequential
    /// functions, and returns the fragment's dataflow endpoints — or the
    /// [`ExecError`] explaining why this shape has no machine encoding.
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError>;
}

/// A program shape that can head an `itermem` loop body on the
/// simulator: the loop machinery lowers the body through this trait
/// rather than [`SimLower`] directly, so that shapes *without* a machine
/// encoding — a bare [`Pure`] function over the by-reference
/// `(state, frame)` tuple — surface a dedicated, diagnosable
/// [`ExecError::PureLoopBody`] at lowering time instead of an opaque
/// trait-bound failure.
pub trait SimLowerBody<Z, B>: for<'x> Skeleton<&'x (Z, B)> {
    /// Lowers this loop body into `lw`, or reports why it cannot lower.
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError>;
}

impl<Z, B, C, A, Z2> SimLowerBody<Z, B> for Df<C, A, Z2>
where
    Df<C, A, Z2>: for<'x> SimLower<&'x (Z, B)>,
{
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        <Self as SimLower<&(Z, B)>>::lower(self, lw)
    }
}

impl<Z, B, S, C, M> SimLowerBody<Z, B> for Scm<S, C, M>
where
    Scm<S, C, M>: for<'x> SimLower<&'x (Z, B)>,
{
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        <Self as SimLower<&(Z, B)>>::lower(self, lw)
    }
}

impl<Z, B, W, A, Z2> SimLowerBody<Z, B> for Tf<W, A, Z2>
where
    Tf<W, A, Z2>: for<'x> SimLower<&'x (Z, B)>,
{
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        <Self as SimLower<&(Z, B)>>::lower(self, lw)
    }
}

impl<Z, B, P, Z2> SimLowerBody<Z, B> for IterLoop<P, Z2>
where
    IterLoop<P, Z2>: for<'x> SimLower<&'x (Z, B)>,
{
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        <Self as SimLower<&(Z, B)>>::lower(self, lw)
    }
}

impl<Z, B, A, B2> SimLowerBody<Z, B> for Then<A, B2>
where
    Then<A, B2>: for<'x> SimLower<&'x (Z, B)>,
{
    fn lower_body(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        <Self as SimLower<&(Z, B)>>::lower(self, lw)
    }
}

/// The ROADMAP's unlowerable case, made diagnosable: a bare `pure(...)`
/// loop body types as a host-side [`Skeleton`] but has no executive
/// encoding for its by-reference `(state, frame)` input, so lowering it
/// fails with [`ExecError::PureLoopBody`] (message pinned by test).
impl<Z, B, Y, F> SimLowerBody<Z, B> for Pure<F>
where
    F: for<'x> Fn(&'x (Z, B)) -> (Z, Y),
{
    fn lower_body(&self, _lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        Err(ExecError::PureLoopBody)
    }
}

fn named(t: &str) -> DataType {
    DataType::named(t)
}

/// Expands a `df` farm into the network with the backend's farm shape,
/// registering its compute/accumulate functions. Shared by the slice
/// (one-shot) and loop-body lowerings — the node structure and functions
/// are identical; only the master's accumulator seeding differs, and that
/// is decided at run time by the input's shape (list vs `(state, items)`
/// tuple).
fn lower_df_nodes<I, O, C, A, Z>(prog: &Df<C, A, Z>, lw: &mut Lowering<'_>) -> Fragment
where
    C: Fn(&I) -> O + Clone + Send + Sync + 'static,
    A: Fn(Z, O) -> Z + Clone + Send + Sync + 'static,
    I: SimValue,
    O: SimValue,
    Z: SimValue,
{
    let comp_name = lw.fresh("df_comp");
    let acc_name = lw.fresh("df_acc");
    let h = expand_df(
        lw.net,
        prog.workers(),
        &comp_name,
        &acc_name,
        DfTypes {
            item: named("item"),
            result: named("result"),
            acc: named("acc"),
        },
        lw.shape,
    );
    let comp = prog.compute_fn().clone();
    lw.register_costed(
        &comp_name,
        prog.cost_hint(),
        prog.cost_model(),
        move |args| {
            let item = I::from_value(&args[0]).expect("df item decodes");
            vec![comp(&item).to_value()]
        },
    );
    let acc = prog.acc_fn().clone();
    lw.reg.register(&acc_name, move |args| {
        let z = Z::from_value(&args[0]).expect("df accumulator decodes");
        let o = O::from_value(&args[1]).expect("df result decodes");
        vec![acc(z, o).to_value()]
    });
    lw.farm_init.insert(h.instance, prog.init().to_value());
    lw.hint_nodes(&h.workers, prog.cost_hint(), prog.cost_model());
    lw.workers.extend(h.workers.iter().copied());
    lw.colocate_routers(&h);
    Fragment {
        entry: h.master,
        exit: h.master,
    }
}

/// Wraps a farm fragment for loop-body use: the master's output `z'`
/// becomes the `(state', output)` pair the Fig. 4 `unpair` contract
/// expects (both components are the updated accumulator — see the
/// matching `Skeleton<&(Z, Vec<_>)>` impls in `skipper`).
fn state_pair_exit(lw: &mut Lowering<'_>, farm: Fragment) -> Fragment {
    let name = lw.fresh("state_pair");
    let node = lw
        .net
        .add_node(NodeKind::UserFn(name.clone()), name.clone());
    lw.reg.register(&name, |args| {
        vec![Value::tuple(vec![args[0].clone(), args[0].clone()])]
    });
    lw.net
        .add_data_edge(farm.exit, 0, node, 0, named("state"))
        .expect("fragment endpoints exist");
    Fragment {
        entry: farm.entry,
        exit: node,
    }
}

impl<I, O, C, A, Z> SimLower<&[I]> for Df<C, A, Z>
where
    C: Fn(&I) -> O + Clone + Send + Sync + 'static,
    A: Fn(Z, O) -> Z + Clone + Send + Sync + 'static,
    I: SimValue + Sync,
    O: SimValue + Send,
    Z: SimValue + Clone,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        Ok(lower_df_nodes(self, lw))
    }
}

/// A data farm as an `itermem` loop body: the `(state, frame)` tuple
/// arrives on the master, whose accumulator is seeded by the carried
/// state (the executive's seeded-master protocol).
impl<I, O, C, A, Z> SimLower<&(Z, Vec<I>)> for Df<C, A, Z>
where
    C: Fn(&I) -> O + Clone + Send + Sync + 'static,
    A: Fn(Z, O) -> Z + Clone + Send + Sync + 'static,
    I: SimValue + Sync,
    O: SimValue + Send,
    Z: SimValue + Clone,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        let farm = lower_df_nodes(self, lw);
        Ok(state_pair_exit(lw, farm))
    }
}

impl<I, F, P, R, S, C, M> SimLower<&I> for Scm<S, C, M>
where
    S: Fn(&I, usize) -> Vec<F> + Clone + Send + Sync + 'static,
    C: Fn(F) -> P + Clone + Send + Sync + 'static,
    M: Fn(Vec<P>) -> R + Clone + Send + Sync + 'static,
    I: SimValue,
    F: SimValue + Send,
    P: SimValue + Send,
    R: SimValue,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        let n = self.workers();
        let split_name = lw.fresh("scm_split");
        let comp_name = lw.fresh("scm_comp");
        let merge_name = lw.fresh("scm_merge");
        let h = expand_scm(
            lw.net,
            n,
            &split_name,
            &comp_name,
            &merge_name,
            ScmTypes {
                input: named("input"),
                fragment: named("fragment"),
                partial: named("partial"),
                output: named("output"),
            },
        );
        let split = self.split_fn().clone();
        lw.reg.register(&split_name, move |args| {
            let x = I::from_value(&args[0]).expect("scm input decodes");
            let frags = split(&x, n);
            // The statically-expanded network has exactly `n` compute
            // nodes, so any other fragment count cannot be published.
            // Returning the short list (or an empty one, when too many
            // fragments would otherwise be silently dropped) makes the
            // executive fail the run with `ExecError::BadShape` instead
            // of panicking or losing work items.
            if frags.len() > n {
                return vec![Value::list(Vec::new())];
            }
            vec![Value::list(frags.iter().map(SimValue::to_value).collect())]
        });
        let compute = self.compute_fn().clone();
        lw.register_costed(
            &comp_name,
            self.cost_hint(),
            self.cost_model(),
            move |args| {
                let f = F::from_value(&args[0]).expect("scm fragment decodes");
                vec![compute(f).to_value()]
            },
        );
        let merge = self.merge_fn().clone();
        lw.reg.register(&merge_name, move |args| {
            let parts: Vec<P> = args[0]
                .as_list()
                .expect("scm partials arrive as a list")
                .iter()
                .map(|v| P::from_value(v).expect("scm partial decodes"))
                .collect();
            vec![merge(parts).to_value()]
        });
        lw.hint_nodes(&h.workers, self.cost_hint(), self.cost_model());
        lw.workers.extend(h.workers.iter().copied());
        Ok(Fragment {
            entry: h.split,
            exit: h.merge,
        })
    }
}

/// Expands a `tf` task farm into the network (shared by the owned-task
/// and loop-body lowerings, as with [`lower_df_nodes`]).
fn lower_tf_nodes<T, O, W, A, Z>(prog: &Tf<W, A, Z>, lw: &mut Lowering<'_>) -> Fragment
where
    W: Fn(T) -> (Vec<T>, Option<O>) + Clone + Send + Sync + 'static,
    A: Fn(Z, O) -> Z + Clone + Send + Sync + 'static,
    T: SimValue,
    O: SimValue,
    Z: SimValue,
{
    let worker_name = lw.fresh("tf_worker");
    let acc_name = lw.fresh("tf_acc");
    let h = expand_df(
        lw.net,
        prog.workers(),
        &worker_name,
        &acc_name,
        DfTypes {
            item: named("task"),
            result: DataType::list(named("result")),
            acc: named("acc"),
        },
        lw.shape,
    );
    let worker = prog.worker_fn().clone();
    lw.register_costed(
        &worker_name,
        prog.cost_hint(),
        prog.cost_model(),
        move |args| {
            // Depth-first elaboration of this root task's subtree (the
            // same order as `skipper::spec::tf` within one subtree).
            let root = T::from_value(&args[0]).expect("tf task decodes");
            let mut stack = vec![root];
            let mut results: Vec<Value> = Vec::new();
            while let Some(t) = stack.pop() {
                let (new_tasks, result) = worker(t);
                stack.extend(new_tasks.into_iter().rev());
                if let Some(o) = result {
                    results.push(o.to_value());
                }
            }
            vec![Value::list(results)]
        },
    );
    let acc = prog.acc_fn().clone();
    lw.reg.register(&acc_name, move |args| {
        let z = Z::from_value(&args[0]).expect("tf accumulator decodes");
        let folded = args[1]
            .as_list()
            .expect("tf subtree results arrive as a list")
            .iter()
            .map(|v| O::from_value(v).expect("tf result decodes"))
            .fold(z, &acc);
        vec![folded.to_value()]
    });
    lw.farm_init.insert(h.instance, prog.init().to_value());
    lw.hint_nodes(&h.workers, prog.cost_hint(), prog.cost_model());
    lw.workers.extend(h.workers.iter().copied());
    lw.colocate_routers(&h);
    Fragment {
        entry: h.master,
        exit: h.master,
    }
}

impl<T, O, W, A, Z> SimLower<Vec<T>> for Tf<W, A, Z>
where
    W: Fn(T) -> (Vec<T>, Option<O>) + Clone + Send + Sync + 'static,
    A: Fn(Z, O) -> Z + Clone + Send + Sync + 'static,
    T: SimValue + Send,
    O: SimValue + Send,
    Z: SimValue + Clone,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        Ok(lower_tf_nodes(self, lw))
    }
}

/// A task farm as an `itermem` loop body: the frame's root tasks are
/// elaborated with the carried state seeding the accumulator.
impl<T, O, W, A, Z> SimLower<&(Z, Vec<T>)> for Tf<W, A, Z>
where
    W: Fn(T) -> (Vec<T>, Option<O>) + Clone + Send + Sync + 'static,
    A: Fn(Z, O) -> Z + Clone + Send + Sync + 'static,
    T: SimValue + Clone + Send,
    O: SimValue + Send,
    Z: SimValue + Clone,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        let farm = lower_tf_nodes(self, lw);
        Ok(state_pair_exit(lw, farm))
    }
}

/// A stream loop as the body of an *outer* stream loop (nested
/// `itermem`). The inner loop's trip count is data-dependent — one body
/// run per element of the outer frame — so it cannot be unrolled into the
/// static process network; like a `tf` root task's subtree, the whole
/// burst is elaborated sequentially on the processor the node is mapped
/// to, seeded with the carried state.
impl<P, Z, B, Y> SimLower<&(Z, Vec<B>)> for IterLoop<P, Z>
where
    P: for<'x> Skeleton<&'x (Z, B), Output = (Z, Y)> + Clone + Send + Sync + 'static,
    Z: SimValue + Clone + Send + Sync,
    B: SimValue + Clone + Send + Sync,
    Y: SimValue,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        let name = lw.fresh("inner_loop");
        let node = lw
            .net
            .add_node(NodeKind::UserFn(name.clone()), name.clone());
        let inner = self.clone();
        lw.reg.register(&name, move |args| {
            let pair = <(Z, Vec<B>)>::from_value(&args[0]).expect("inner loop input decodes");
            vec![inner.run_declarative(&pair).to_value()]
        });
        Ok(Fragment {
            entry: node,
            exit: node,
        })
    }
}

impl<In, Out, F> SimLower<In> for Pure<F>
where
    F: Fn(In) -> Out + Clone + Send + Sync + 'static,
    In: SimValue,
    Out: SimValue,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        let name = lw.fresh("fn");
        let node = lw
            .net
            .add_node(NodeKind::UserFn(name.clone()), name.clone());
        let f = self.get().clone();
        lw.reg.register(&name, move |args| {
            let x = In::from_value(&args[0]).expect("function input decodes");
            vec![f(x).to_value()]
        });
        Ok(Fragment {
            entry: node,
            exit: node,
        })
    }
}

impl<In, A, B> SimLower<In> for Then<A, B>
where
    A: SimLower<In>,
    B: SimLower<<A as Skeleton<In>>::Output>,
{
    fn lower(&self, lw: &mut Lowering<'_>) -> Result<Fragment, ExecError> {
        let fa = self.first().lower(lw)?;
        let fb = self.second().lower(lw)?;
        lw.net
            .add_data_edge(fa.exit, 0, fb.entry, 0, named("link"))
            .expect("fragment endpoints exist");
        Ok(Fragment {
            entry: fa.entry,
            exit: fb.exit,
        })
    }
}

/// Encoding of a top-level program input (by shape: slices, references,
/// owned values).
pub trait SimInput {
    /// A lifetime-free tag naming this input's shape — [`SliceInput<T>`]
    /// for `&[T]`, [`RefInput<T>`] for `&T`, the type itself for owned
    /// inputs. A prepared [`SimExecutable`] is typed with the shape its
    /// program was compiled for, so handing it a differently-shaped
    /// input (a scalar into a farm, a `(state, items)` seed tuple into a
    /// one-shot lowering) is a compile error rather than a runtime
    /// [`ExecError::BadShape`] — while borrows of any lifetime still
    /// run, because the tag carries none.
    type Shape: 'static;

    /// Encodes the input as the value the graph's `Input` node produces.
    fn encode_input(&self) -> Value;
}

/// The [`SimInput::Shape`] tag of an item-slice input `&[T]`.
pub struct SliceInput<T>(std::marker::PhantomData<fn(T)>);

/// The [`SimInput::Shape`] tag of a by-reference input `&T`.
pub struct RefInput<T>(std::marker::PhantomData<fn(T)>);

impl<T: SimValue> SimInput for &[T] {
    type Shape = SliceInput<T>;

    fn encode_input(&self) -> Value {
        Value::list(self.iter().map(SimValue::to_value).collect())
    }
}

impl<T: SimValue> SimInput for &T {
    type Shape = RefInput<T>;

    fn encode_input(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: SimValue> SimInput for Vec<T> {
    type Shape = Vec<T>;

    fn encode_input(&self) -> Value {
        Value::list(self.iter().map(SimValue::to_value).collect())
    }
}

// Owned scalar/compound inputs (the `Pure` program shape takes its input
// by value): encoded exactly like their [`SimValue`] form. Written per
// concrete type rather than as a blanket so the `Vec<T>`/`&T` impls
// above stay coherent.
macro_rules! impl_owned_sim_input {
    ($($t:ty),* $(,)?) => {$(
        impl SimInput for $t {
            type Shape = $t;

            fn encode_input(&self) -> Value {
                self.to_value()
            }
        }
    )*};
}

impl_owned_sim_input!(
    (),
    bool,
    f64,
    String,
    i8,
    i16,
    i32,
    i64,
    u8,
    u16,
    u32,
    u64,
    usize,
    isize
);

impl<A: SimValue, B: SimValue> SimInput for (A, B) {
    type Shape = (A, B);

    fn encode_input(&self) -> Value {
        self.to_value()
    }
}

impl<A: SimValue, B: SimValue, C: SimValue> SimInput for (A, B, C) {
    type Shape = (A, B, C);

    fn encode_input(&self) -> Value {
        self.to_value()
    }
}

impl<A: SimValue, B: SimValue, C: SimValue, D: SimValue> SimInput for (A, B, C, D) {
    type Shape = (A, B, C, D);

    fn encode_input(&self) -> Value {
        self.to_value()
    }
}

impl<T: SimValue> SimInput for Option<T> {
    type Shape = Option<T>;

    fn encode_input(&self) -> Value {
        self.to_value()
    }
}

/// The simulator execution strategy: the program is expanded into a
/// process network, mapped onto a T9000-class machine (a ring of
/// `nprocs` processors, or a single processor), compiled to per-processor
/// macro-code and interpreted on the [`transvision`] discrete-event
/// simulator.
///
/// The skeleton's control nodes run on `P0`; its worker nodes are pinned
/// round-robin over `P1..`, reproducing the paper's master/workers
/// placement. Run results come back as `Result`, since lowering, mapping
/// or simulation can fail ([`ExecError`]).
#[derive(Debug, Clone)]
pub struct SimBackend {
    nprocs: usize,
    config: SimConfig,
    farm_shape: FarmShape,
}

impl SimBackend {
    /// A backend simulating a ring of `nprocs` T9000-class processors
    /// (1 means a single processor). An `nprocs` of 0 is accepted at
    /// construction — a machine description is just data — but every
    /// lowering on it fails with [`ExecError::EmptyMachine`].
    pub fn ring(nprocs: usize) -> Self {
        SimBackend {
            nprocs,
            config: SimConfig::default(),
            farm_shape: FarmShape::Star,
        }
    }

    /// A backend simulating a single processor (the machine-side
    /// equivalent of sequential emulation).
    pub fn single() -> Self {
        SimBackend::ring(1)
    }

    /// Replaces the simulated machine timing model.
    pub fn with_sim_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the farm PNT shape programs are lowered with:
    /// [`FarmShape::Star`] (the default) addresses workers point-to-point
    /// over the simulator's store-and-forward links, while
    /// [`FarmShape::Ring`] expands Fig. 1's explicit `M->W`/`W->M` router
    /// processes and relays farm traffic hop-by-hop along the worker
    /// chain at application level.
    pub fn with_farm_shape(mut self, shape: FarmShape) -> Self {
        self.farm_shape = shape;
        self
    }

    /// The farm PNT shape this backend lowers with.
    pub fn farm_shape(&self) -> FarmShape {
        self.farm_shape
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Lowering precondition: the machine must have at least one
    /// processor.
    fn require_procs(&self) -> Result<(), ExecError> {
        if self.nprocs == 0 {
            return Err(ExecError::EmptyMachine);
        }
        Ok(())
    }

    /// The paper's placement policy: control nodes pinned to `P0`, worker
    /// nodes round-robin on `P1..` (everything on `P0` when simulating a
    /// single processor), and ring routers co-located with their workers.
    fn placement(
        &self,
        net: &ProcessNetwork,
        workers: &[NodeId],
        colocated: &[(NodeId, NodeId)],
    ) -> (Architecture, HashMap<NodeId, ProcId>, Strategy) {
        if self.nprocs == 1 {
            (
                Architecture::single_t9000(),
                HashMap::new(),
                Strategy::SingleProc,
            )
        } else {
            let arch = Architecture::ring_t9000(self.nprocs);
            let worker_set: HashSet<NodeId> = workers.iter().copied().collect();
            let mut pins = HashMap::new();
            for node in net.nodes() {
                if !worker_set.contains(&node.id) {
                    pins.insert(node.id, ProcId(0));
                }
            }
            for (i, &w) in workers.iter().enumerate() {
                pins.insert(w, ProcId(1 + i % (self.nprocs - 1)));
            }
            for &(node, with) in colocated {
                let p = pins.get(&with).copied().unwrap_or(ProcId(0));
                pins.insert(node, p);
            }
            (arch, pins, Strategy::MinFinish)
        }
    }

    /// Lowers and schedules a one-shot program: the offline pipeline up
    /// to (and including) the SynDEx schedule, shared by
    /// [`SimBackend::plan`] (which stops here) and
    /// [`SimBackend::compile`] (which goes on to macro-code).
    fn lower_and_schedule<I, P>(
        &self,
        prog: &P,
    ) -> Result<(LoweredOneShot, Architecture, Schedule), ExecError>
    where
        P: SimLower<I>,
    {
        self.require_procs()?;
        let lowered = lower_one_shot(prog, self.farm_shape)?;
        let (arch, pins, strategy) =
            self.placement(&lowered.net, &lowered.workers, &lowered.colocated);
        let sched = schedule_with(&lowered.net, &arch, &pins, strategy)
            .map_err(|e| ExecError::Sim(format!("scheduling failed: {e}")))?;
        Ok((lowered, arch, sched))
    }

    /// Compiles a one-shot program down to interpretable macro-code: the
    /// prepare-once half of the pipeline (lowering → placement → SynDEx
    /// scheduling → macro-code generation), shared by
    /// [`Backend::prepare`] and [`Backend::run`].
    fn compile<I, P>(&self, prog: &P) -> Result<CompiledSim, ExecError>
    where
        P: SimLower<I>,
    {
        let (lowered, arch, sched) = self.lower_and_schedule::<I, P>(prog)?;
        let progs = skipper_syndex::macrocode::generate(&lowered.net, &sched, &arch);
        // Bind the input/output endpoints ONCE, here, against rebindable
        // slots: a run only stores the frame into `input_slot` and takes
        // the result out of `output_slot` — the registry itself is never
        // cloned or re-registered per frame (the zero-copy run contract,
        // pinned by the registry_probe test).
        let mut reg = lowered.reg;
        let input_slot: Arc<Mutex<Option<Value>>> = Arc::new(Mutex::new(None));
        let output_slot: Arc<Mutex<Option<Value>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&input_slot);
        reg.register("simbackend_input", move |_| {
            vec![slot
                .lock()
                .expect("input slot")
                .clone()
                .expect("input bound before run")]
        });
        let slot = Arc::clone(&output_slot);
        reg.register("simbackend_output", move |args| {
            *slot.lock().expect("output slot") = Some(args[0].clone());
            vec![]
        });
        let stat = SimStatics::analyze(
            lowered.net,
            sched,
            progs,
            arch.topology().clone(),
            Arc::new(reg),
            &lowered.farm_init,
        )?;
        Ok(CompiledSim {
            stat: Arc::new(stat),
            config: self.config,
            input_slot,
            output_slot,
            run_lock: Mutex::new(()),
        })
    }

    /// Lowers a one-shot program and returns the SynDEx schedule this
    /// backend would execute it with — without running it (macro-code is
    /// not generated). The schedule's predicted makespan reflects the
    /// program's [`with_cost_hint`](skipper::Df::with_cost_hint) and
    /// [`with_cost_model`](skipper::Df::with_cost_model) declarations,
    /// which the lowering stamps onto the worker nodes as WCET hints.
    pub fn plan<I, P>(&self, prog: &P) -> Result<Schedule, ExecError>
    where
        P: SimLower<I>,
    {
        Ok(self.lower_and_schedule::<I, P>(prog)?.2)
    }
}

/// A one-shot program compiled for repeated simulation: the full
/// run-invariant context ([`SimStatics`]: network, registry, schedule,
/// macro-code, topology, farm tables) behind one `Arc`, plus the
/// rebindable input/output **slots** its endpoint functions were bound
/// against at compile time. A run stores the encoded frame into the
/// input slot, re-interprets the cached macro-code with fresh simulator
/// state, and takes the result from the output slot — zero registry
/// clones, zero network/schedule/macro-code copies per frame.
struct CompiledSim {
    stat: Arc<SimStatics>,
    config: SimConfig,
    /// Per-run frame binding read by the `simbackend_input` endpoint.
    input_slot: Arc<Mutex<Option<Value>>>,
    /// Per-run result binding written by the `simbackend_output` endpoint.
    output_slot: Arc<Mutex<Option<Value>>>,
    /// Runs share the slots above, so concurrent `run` calls on one
    /// executable are serialised (the contract stays `&self`).
    run_lock: Mutex<()>,
}

impl CompiledSim {
    /// One online run: rebind the input slot, interpret the cached
    /// macro-code for a single graph iteration, take the output slot.
    fn run_value(&self, encoded: Value) -> Result<Value, ExecError> {
        let _guard = self.run_lock.lock().expect("run lock");
        *self.input_slot.lock().expect("input slot") = Some(encoded);
        self.output_slot.lock().expect("output slot").take();
        let config = ExecConfig {
            iterations: 1,
            frame_clock: None,
            sim: self.config,
        };
        let run = run_prepared(&self.stat, &HashMap::new(), &config);
        // Unbind the frame either way: a slot must never pin a frame's
        // payload past its run.
        self.input_slot.lock().expect("input slot").take();
        run?;
        let v = self.output_slot.lock().expect("output slot").take();
        v.ok_or_else(|| ExecError::Internal("program produced no output".into()))
    }
}

/// A one-shot program prepared by [`SimBackend`] (see
/// [`Backend::prepare`]): lowering, scheduling and macro-code generation
/// already happened, exactly once; every [`Executable::run`] call only
/// simulates. A preparation failure (e.g. [`ExecError::EmptyMachine`])
/// is carried inside and handed back on every run.
///
/// `Shape` is the [`SimInput::Shape`] tag of the input the program was
/// prepared for: it pins the compiled network's encoding, so an
/// executable prepared over item slices cannot be handed a scalar (or a
/// `(state, items)` seed tuple) by accident — the mismatch is a compile
/// error, not a runtime [`ExecError::BadShape`]. The tag is
/// lifetime-free, so inputs borrowed for any lifetime run.
pub struct SimExecutable<Shape, Out> {
    inner: Result<CompiledSim, ExecError>,
    _io: std::marker::PhantomData<fn(Shape) -> Out>,
}

impl<Shape, Out> SimExecutable<Shape, Out> {
    fn new(inner: Result<CompiledSim, ExecError>) -> Self {
        SimExecutable {
            inner,
            _io: std::marker::PhantomData,
        }
    }

    /// The SynDEx schedule every run of this executable follows (the
    /// compiled counterpart of [`SimBackend::plan`]), or the preparation
    /// error. Useful to assert plan identity across runs: the schedule is
    /// computed once, at prepare time.
    pub fn schedule(&self) -> Result<&Schedule, ExecError> {
        match &self.inner {
            Ok(c) => Ok(c.stat.schedule()),
            Err(e) => Err(e.clone()),
        }
    }
}

impl<Shape, Out> std::fmt::Debug for SimExecutable<Shape, Out> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimExecutable")
            .field("prepared", &self.inner.is_ok())
            .finish()
    }
}

impl<In, Out> Executable<In> for SimExecutable<In::Shape, Out>
where
    In: SimInput,
    Out: SimValue,
{
    type Output = Result<Out, ExecError>;

    fn run(&self, input: In) -> Result<Out, ExecError> {
        let compiled = self.inner.as_ref().map_err(Clone::clone)?;
        let out = compiled.run_value(input.encode_input())?;
        decode(&out, "prepared program result")
    }
}

/// A one-shot program lowered to a process network with `Input`/`Output`
/// endpoints wired around the program fragment. The registry holds the
/// program's own functions; the `simbackend_input`/`simbackend_output`
/// endpoint functions are bound by the caller.
struct LoweredOneShot {
    net: ProcessNetwork,
    reg: Registry,
    workers: Vec<NodeId>,
    colocated: Vec<(NodeId, NodeId)>,
    farm_init: HashMap<usize, Value>,
}

/// Counts every program lowering this process has performed (one-shot
/// and loop lowerings alike): the prepare-once contract's observable.
/// The prepared-reuse tests snapshot it around a prepare-then-run-many
/// sequence and assert the delta is exactly one.
static LOWERINGS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Total number of program lowerings performed by this process so far —
/// a monotonic probe for asserting the prepare-once/run-many contract
/// (compare deltas around a prepare + N runs sequence).
pub fn lowering_count() -> usize {
    LOWERINGS.load(std::sync::atomic::Ordering::Relaxed)
}

fn lower_one_shot<I, P>(prog: &P, shape: FarmShape) -> Result<LoweredOneShot, ExecError>
where
    P: SimLower<I>,
{
    LOWERINGS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut net = ProcessNetwork::new("simbackend");
    let mut reg = Registry::new();
    let mut farm_init = HashMap::new();
    let mut workers = Vec::new();
    let mut colocated = Vec::new();
    let mut counter = 0usize;
    let frag = prog.lower(&mut Lowering {
        net: &mut net,
        reg: &mut reg,
        farm_init: &mut farm_init,
        workers: &mut workers,
        colocated: &mut colocated,
        shape,
        counter: &mut counter,
    })?;
    let inp = net.add_node(NodeKind::Input("simbackend_input".into()), "input");
    let out = net.add_node(NodeKind::Output("simbackend_output".into()), "output");
    net.add_data_edge(inp, 0, frag.entry, 0, named("input"))
        .map_err(internal)?;
    net.add_data_edge(frag.exit, 0, out, 0, named("output"))
        .map_err(internal)?;
    Ok(LoweredOneShot {
        net,
        reg,
        workers,
        colocated,
        farm_init,
    })
}

use skipper::{Backend, Executable};

impl<'a, I, C, A, Z> Backend<Df<C, A, Z>, &'a [I]> for SimBackend
where
    Df<C, A, Z>: SimLower<&'a [I]> + Skeleton<&'a [I], Output = Z>,
    I: SimValue,
    Z: SimValue,
{
    type Output = Result<Z, ExecError>;

    type Prepared<'p>
        = SimExecutable<SliceInput<I>, Z>
    where
        Self: 'p,
        Df<C, A, Z>: 'p;

    fn prepare<'p>(&'p self, prog: &'p Df<C, A, Z>) -> SimExecutable<SliceInput<I>, Z> {
        SimExecutable::new(self.compile::<&'a [I], _>(prog))
    }
}

impl<'a, I, R, S, C, M> Backend<Scm<S, C, M>, &'a I> for SimBackend
where
    Scm<S, C, M>: SimLower<&'a I> + Skeleton<&'a I, Output = R>,
    I: SimValue,
    R: SimValue,
{
    type Output = Result<R, ExecError>;

    type Prepared<'p>
        = SimExecutable<RefInput<I>, R>
    where
        Self: 'p,
        Scm<S, C, M>: 'p;

    fn prepare<'p>(&'p self, prog: &'p Scm<S, C, M>) -> SimExecutable<RefInput<I>, R> {
        SimExecutable::new(self.compile::<&'a I, _>(prog))
    }
}

impl<T, W, A, Z> Backend<Tf<W, A, Z>, Vec<T>> for SimBackend
where
    Tf<W, A, Z>: SimLower<Vec<T>> + Skeleton<Vec<T>, Output = Z>,
    T: SimValue,
    Z: SimValue,
{
    type Output = Result<Z, ExecError>;

    type Prepared<'p>
        = SimExecutable<Vec<T>, Z>
    where
        Self: 'p,
        Tf<W, A, Z>: 'p;

    fn prepare<'p>(&'p self, prog: &'p Tf<W, A, Z>) -> SimExecutable<Vec<T>, Z> {
        SimExecutable::new(self.compile::<Vec<T>, _>(prog))
    }
}

impl<In, Out, F> Backend<Pure<F>, In> for SimBackend
where
    Pure<F>: SimLower<In> + Skeleton<In, Output = Out>,
    In: SimValue + SimInput,
    Out: SimValue,
{
    type Output = Result<Out, ExecError>;

    type Prepared<'p>
        = SimExecutable<In::Shape, Out>
    where
        Self: 'p,
        Pure<F>: 'p;

    fn prepare<'p>(&'p self, prog: &'p Pure<F>) -> SimExecutable<In::Shape, Out> {
        SimExecutable::new(self.compile::<In, _>(prog))
    }
}

impl<In, Out, A, B> Backend<Then<A, B>, In> for SimBackend
where
    Then<A, B>: SimLower<In> + Skeleton<In, Output = Out>,
    In: SimInput,
    Out: SimValue,
{
    type Output = Result<Out, ExecError>;

    type Prepared<'p>
        = SimExecutable<In::Shape, Out>
    where
        Self: 'p,
        Then<A, B>: 'p;

    fn prepare<'p>(&'p self, prog: &'p Then<A, B>) -> SimExecutable<In::Shape, Out> {
        SimExecutable::new(self.compile::<In, _>(prog))
    }
}

impl SimBackend {
    /// Runs an `itermem` stream loop and returns the outputs **together
    /// with the executive report** (virtual-time trace, per-frame
    /// latencies, processor utilisations) — the measurement face of
    /// `Backend::run` for loop programs, used by the latency experiments.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`]; additionally, an empty frame stream is an
    /// [`ExecError::Internal`] here because nothing is simulated (the
    /// `Backend::run` wrapper short-circuits that case instead).
    pub fn run_loop_with_report<P, Z, B, Y>(
        &self,
        prog: &IterLoop<P, Z>,
        frames: Vec<B>,
    ) -> Result<((Z, Vec<Y>), ExecReport), ExecError>
    where
        P: SimLowerBody<Z, B> + for<'x> Skeleton<&'x (Z, B), Output = (Z, Y)>,
        Z: SimValue + Clone,
        B: SimValue,
        Y: SimValue,
    {
        let exec: SimLoopExecutable<Z, B, Y> =
            SimLoopExecutable::new(self.compile_loop(prog), prog.init().clone());
        exec.run_with_report(frames)
    }

    /// Compiles an `itermem` stream loop down to interpretable
    /// macro-code: the body is lowered and wrapped in the Fig. 4
    /// `pair`/`MEM`/`unpair` harness, then scheduled and code-generated —
    /// all exactly once, shared by every run of the returned state.
    fn compile_loop<P, Z, B>(&self, prog: &IterLoop<P, Z>) -> Result<CompiledSimLoop, ExecError>
    where
        P: SimLowerBody<Z, B>,
    {
        self.require_procs()?;
        LOWERINGS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut net = ProcessNetwork::new("simbackend-itermem");
        let mut reg = Registry::new();
        let mut farm_init = HashMap::new();
        let mut workers = Vec::new();
        let mut colocated = Vec::new();
        let mut counter = 0usize;
        let frag = prog.body().lower_body(&mut Lowering {
            net: &mut net,
            reg: &mut reg,
            farm_init: &mut farm_init,
            workers: &mut workers,
            colocated: &mut colocated,
            shape: self.farm_shape,
            counter: &mut counter,
        })?;
        // Fig. 4 port contract around the body fragment: `pair` packs
        // (frame on port 0, state on port 1) into the body's input tuple;
        // `unpair` splits the body's (state', output) tuple back onto
        // (output on port 0, next state on port 1). All four harness
        // functions are bound HERE, once, against rebindable slots — a
        // run only swaps the frame vector in and takes the state/output
        // slots back out (zero registry clones per stream).
        let pair = net.add_node(NodeKind::UserFn("simbackend_pair".into()), "pair");
        reg.register("simbackend_pair", |args| {
            vec![Value::tuple(vec![args[1].clone(), args[0].clone()])]
        });
        let unpair = net.add_node(NodeKind::UserFn("simbackend_unpair".into()), "unpair");
        net.add_data_edge(pair, 0, frag.entry, 0, named("state-frame"))
            .map_err(internal)?;
        net.add_data_edge(frag.exit, 0, unpair, 0, named("state-output"))
            .map_err(internal)?;
        let h = expand_itermem(
            &mut net,
            "simbackend_grab",
            "simbackend_show",
            pair,
            unpair,
            IterMemTypes {
                input: named("frame"),
                state: named("state"),
                output: named("output"),
            },
        )
        .map_err(internal)?;
        let frames_slot: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let state_slot: Arc<Mutex<Option<Value>>> = Arc::new(Mutex::new(None));
        let outputs_slot: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
        let slot = Arc::clone(&state_slot);
        reg.register("simbackend_unpair", move |args| {
            let t = args[0]
                .as_tuple()
                .expect("loop body must produce a (state, output) tuple");
            *slot.lock().expect("state slot") = Some(t[0].clone());
            vec![t[1].clone(), t[0].clone()]
        });
        let slot = Arc::clone(&frames_slot);
        reg.register("simbackend_grab", move |args| {
            let frames = slot.lock().expect("frames slot");
            let k = args[0].as_int().unwrap_or(0).unsigned_abs() as usize;
            vec![frames[k.min(frames.len() - 1)].clone()]
        });
        let slot = Arc::clone(&outputs_slot);
        reg.register("simbackend_show", move |args| {
            slot.lock().expect("output slot").push(args[0].clone());
            vec![]
        });
        let (arch, pins, strategy) = self.placement(&net, &workers, &colocated);
        let sched = schedule_with(&net, &arch, &pins, strategy)
            .map_err(|e| ExecError::Sim(format!("scheduling failed: {e}")))?;
        let progs = skipper_syndex::macrocode::generate(&net, &sched, &arch);
        let stat = SimStatics::analyze(
            net,
            sched,
            progs,
            arch.topology().clone(),
            Arc::new(reg),
            &farm_init,
        )?;
        Ok(CompiledSimLoop {
            base: CompiledSim {
                stat: Arc::new(stat),
                config: self.config,
                input_slot: Arc::new(Mutex::new(None)),
                output_slot: Arc::new(Mutex::new(None)),
                run_lock: Mutex::new(()),
            },
            mem: h.mem,
            frames_slot,
            state_slot,
            outputs_slot,
        })
    }
}

/// An `itermem` program compiled for repeated simulation, the loop
/// counterpart of [`CompiledSim`]: the lowered body with its Fig. 4
/// harness behind one `Arc` of statics, plus the rebindable slots the
/// harness endpoints (`grab`/`unpair`/`show`) were bound against at
/// compile time. Per run, only the frame vector is swapped in and the
/// `MEM` initial value seeded — the registry, network, schedule and
/// macro-code are shared untouched.
struct CompiledSimLoop {
    /// The compiled form shared with the one-shot path (statics, config,
    /// run lock; the one-shot input/output slots are unused here).
    base: CompiledSim,
    /// The Fig. 4 `MEM` node, seeded per run with the loop's initial
    /// state.
    mem: NodeId,
    /// Per-run frame vector read by the `simbackend_grab` endpoint.
    frames_slot: Arc<Mutex<Vec<Value>>>,
    /// Latest loop state written by the `simbackend_unpair` endpoint.
    state_slot: Arc<Mutex<Option<Value>>>,
    /// Per-frame outputs appended by the `simbackend_show` endpoint.
    outputs_slot: Arc<Mutex<Vec<Value>>>,
}

impl CompiledSimLoop {
    /// One online stream run: one graph iteration per encoded frame,
    /// with the state memory seeded by `mem0`. Returns the final state,
    /// the per-frame outputs and the executive report.
    fn run_frames(
        &self,
        frames: Vec<Value>,
        mem0: Value,
    ) -> Result<(Value, Vec<Value>, ExecReport), ExecError> {
        let _guard = self.base.run_lock.lock().expect("run lock");
        let iterations = frames.len();
        *self.frames_slot.lock().expect("frames slot") = frames;
        self.state_slot.lock().expect("state slot").take();
        self.outputs_slot.lock().expect("output slot").clear();
        let mut mem_init = HashMap::new();
        mem_init.insert(self.mem, mem0);
        let config = ExecConfig {
            iterations,
            frame_clock: None,
            sim: self.base.config,
        };
        let run = run_prepared(&self.base.stat, &mem_init, &config);
        // Release the frame payloads either way: the slot must never pin
        // a stream's frames past its run (the Vec keeps its capacity, so
        // the buffer itself is recycled across runs).
        self.frames_slot.lock().expect("frames slot").clear();
        let report = run?;
        let z_value = self
            .state_slot
            .lock()
            .expect("state slot")
            .take()
            .ok_or_else(|| ExecError::Internal("loop produced no final state".into()))?;
        let ys = std::mem::take(&mut *self.outputs_slot.lock().expect("output slot"));
        Ok((z_value, ys, report))
    }
}

/// An `itermem` stream-loop program prepared by [`SimBackend`] (see
/// [`Backend::prepare`]): body lowering, scheduling and macro-code
/// generation already happened, exactly once; every
/// [`Executable::run`] over a frame stream only resets per-run simulator
/// state (frame source, output sink, `MEM` seed) and re-interprets the
/// cached macro-code. [`run_with_report`](SimLoopExecutable::run_with_report)
/// additionally surfaces the executive report for latency studies.
/// `B` is the frame type the loop was prepared for, pinned at prepare
/// time for the same reason as [`SimExecutable`]'s `In`.
pub struct SimLoopExecutable<Z, B, Y> {
    inner: Result<CompiledSimLoop, ExecError>,
    init: Z,
    _io: std::marker::PhantomData<fn(Vec<B>) -> Y>,
}

impl<Z, B, Y> SimLoopExecutable<Z, B, Y> {
    fn new(inner: Result<CompiledSimLoop, ExecError>, init: Z) -> Self {
        SimLoopExecutable {
            inner,
            init,
            _io: std::marker::PhantomData,
        }
    }

    /// The SynDEx schedule every run of this executable follows, or the
    /// preparation error.
    pub fn schedule(&self) -> Result<&Schedule, ExecError> {
        match &self.inner {
            Ok(c) => Ok(c.base.stat.schedule()),
            Err(e) => Err(e.clone()),
        }
    }
}

impl<Z, B, Y> std::fmt::Debug for SimLoopExecutable<Z, B, Y> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimLoopExecutable")
            .field("prepared", &self.inner.is_ok())
            .finish()
    }
}

impl<Z, B, Y> SimLoopExecutable<Z, B, Y>
where
    Z: SimValue + Clone,
    B: SimValue,
    Y: SimValue,
{
    /// Runs one frame stream and returns the outputs **together with the
    /// executive report** (virtual-time trace, per-frame latencies,
    /// processor utilisations) — the measurement face of
    /// [`Executable::run`], used by the latency experiments.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`]; additionally, an empty frame stream is an
    /// [`ExecError::Internal`] here because nothing is simulated (the
    /// [`Executable::run`] wrapper short-circuits that case instead).
    pub fn run_with_report(&self, frames: Vec<B>) -> Result<((Z, Vec<Y>), ExecReport), ExecError> {
        let compiled = self.inner.as_ref().map_err(Clone::clone)?;
        if frames.is_empty() {
            return Err(ExecError::Internal(
                "cannot simulate a loop over an empty frame stream".into(),
            ));
        }
        let encoded: Vec<Value> = frames.iter().map(SimValue::to_value).collect();
        let (z_value, ys, report) = compiled.run_frames(encoded, self.init.to_value())?;
        let z = decode(&z_value, "itermem final state")?;
        let ys = ys
            .iter()
            .map(|v| decode(v, "itermem output"))
            .collect::<Result<Vec<Y>, _>>()?;
        Ok(((z, ys), report))
    }
}

impl<Z, B, Y> Executable<Vec<B>> for SimLoopExecutable<Z, B, Y>
where
    Z: SimValue + Clone,
    B: SimValue,
    Y: SimValue,
{
    type Output = Result<(Z, Vec<Y>), ExecError>;

    fn run(&self, frames: Vec<B>) -> Result<(Z, Vec<Y>), ExecError> {
        if let Err(e) = &self.inner {
            return Err(e.clone());
        }
        if frames.is_empty() {
            return Ok((self.init.clone(), Vec::new()));
        }
        self.run_with_report(frames).map(|(out, _)| out)
    }
}

impl<P, Z, B, Y> Backend<IterLoop<P, Z>, Vec<B>> for SimBackend
where
    P: SimLowerBody<Z, B> + for<'x> Skeleton<&'x (Z, B), Output = (Z, Y)>,
    Z: SimValue + Clone,
    B: SimValue,
    Y: SimValue,
{
    type Output = Result<(Z, Vec<Y>), ExecError>;

    type Prepared<'p>
        = SimLoopExecutable<Z, B, Y>
    where
        Self: 'p,
        IterLoop<P, Z>: 'p;

    fn prepare<'p>(&'p self, prog: &'p IterLoop<P, Z>) -> SimLoopExecutable<Z, B, Y> {
        SimLoopExecutable::new(self.compile_loop(prog), prog.init().clone())
    }
}

/// [`SimBackend`]'s adapter into the shared backend-conformance kit
/// ([`skipper::conformance`]): every conformance case must lower,
/// schedule, simulate and agree with the sequential golden results —
/// a failure to execute *is* a conformance failure.
impl skipper::conformance::ConformanceHarness for SimBackend {
    fn name(&self) -> String {
        format!(
            "SimBackend::ring({})[{} farms]",
            self.nprocs,
            match self.farm_shape {
                FarmShape::Star => "star",
                FarmShape::Ring => "ring",
            }
        )
    }

    fn run_df(&self, prog: &skipper::conformance::DfProg, xs: &[i64]) -> i64 {
        self.run(prog, xs).expect("df case lowers and simulates")
    }

    fn run_scm(&self, prog: &skipper::conformance::ScmProg, input: &Vec<i64>) -> Vec<i64> {
        self.run(prog, input)
            .expect("scm case lowers and simulates")
    }

    fn run_tf(&self, prog: &skipper::conformance::TfProg, roots: Vec<u64>) -> u64 {
        self.run(prog, roots).expect("tf case lowers and simulates")
    }

    fn run_then(&self, prog: &skipper::conformance::ThenProg, xs: &[i64]) -> (i64, i64) {
        self.run(prog, xs).expect("then case lowers and simulates")
    }

    fn run_itermem(
        &self,
        prog: &skipper::conformance::LoopProg,
        frames: Vec<i64>,
    ) -> (i64, Vec<i64>) {
        self.run(prog, frames)
            .expect("itermem case lowers and simulates")
    }

    fn run_itermem_df(
        &self,
        prog: &skipper::conformance::LoopDfProg,
        frames: Vec<Vec<i64>>,
    ) -> (i64, Vec<i64>) {
        self.run(prog, frames)
            .expect("itermem(df) case lowers and simulates")
    }

    fn run_itermem_tf(
        &self,
        prog: &skipper::conformance::LoopTfProg,
        frames: Vec<Vec<u64>>,
    ) -> (u64, Vec<u64>) {
        self.run(prog, frames)
            .expect("itermem(tf) case lowers and simulates")
    }

    fn run_nested_loop(
        &self,
        prog: &skipper::conformance::NestedLoopProg,
        bursts: Vec<Vec<i64>>,
    ) -> (i64, Vec<Vec<i64>>) {
        self.run(prog, bursts)
            .expect("nested-loop case lowers and simulates")
    }

    fn run_itermem_then(
        &self,
        prog: &skipper::conformance::LoopThenProg,
        frames: Vec<i64>,
    ) -> (i64, Vec<i64>) {
        self.run(prog, frames)
            .expect("then-inside-loop case lowers and simulates")
    }

    fn run_df_prepared(&self, prog: &skipper::conformance::DfProg, runs: &[Vec<i64>]) -> Vec<i64> {
        let exec = Backend::<_, &[i64]>::prepare(self, prog);
        runs.iter()
            .map(|xs| exec.run(&xs[..]).expect("prepared df case simulates"))
            .collect()
    }

    fn run_scm_prepared(
        &self,
        prog: &skipper::conformance::ScmProg,
        runs: &[Vec<i64>],
    ) -> Vec<Vec<i64>> {
        let exec = Backend::<_, &Vec<i64>>::prepare(self, prog);
        runs.iter()
            .map(|xs| exec.run(xs).expect("prepared scm case simulates"))
            .collect()
    }

    fn run_tf_prepared(&self, prog: &skipper::conformance::TfProg, runs: &[Vec<u64>]) -> Vec<u64> {
        let exec = Backend::<_, Vec<u64>>::prepare(self, prog);
        runs.iter()
            .map(|roots| exec.run(roots.clone()).expect("prepared tf case simulates"))
            .collect()
    }

    fn run_then_prepared(
        &self,
        prog: &skipper::conformance::ThenProg,
        runs: &[Vec<i64>],
    ) -> Vec<(i64, i64)> {
        let exec = Backend::<_, &[i64]>::prepare(self, prog);
        runs.iter()
            .map(|xs| exec.run(&xs[..]).expect("prepared then case simulates"))
            .collect()
    }

    fn run_itermem_prepared(
        &self,
        prog: &skipper::conformance::LoopProg,
        runs: &[Vec<i64>],
    ) -> Vec<(i64, Vec<i64>)> {
        let exec = Backend::<_, Vec<i64>>::prepare(self, prog);
        runs.iter()
            .map(|frames| {
                exec.run(frames.clone())
                    .expect("prepared itermem case simulates")
            })
            .collect()
    }

    fn run_itermem_df_prepared(
        &self,
        prog: &skipper::conformance::LoopDfProg,
        runs: &[Vec<Vec<i64>>],
    ) -> Vec<(i64, Vec<i64>)> {
        let exec = Backend::<_, Vec<Vec<i64>>>::prepare(self, prog);
        runs.iter()
            .map(|frames| {
                exec.run(frames.clone())
                    .expect("prepared itermem(df) case simulates")
            })
            .collect()
    }

    fn run_itermem_tf_prepared(
        &self,
        prog: &skipper::conformance::LoopTfProg,
        runs: &[Vec<Vec<u64>>],
    ) -> Vec<(u64, Vec<u64>)> {
        let exec = Backend::<_, Vec<Vec<u64>>>::prepare(self, prog);
        runs.iter()
            .map(|frames| {
                exec.run(frames.clone())
                    .expect("prepared itermem(tf) case simulates")
            })
            .collect()
    }

    fn run_nested_loop_prepared(
        &self,
        prog: &skipper::conformance::NestedLoopProg,
        runs: &[Vec<Vec<i64>>],
    ) -> Vec<(i64, Vec<Vec<i64>>)> {
        let exec = Backend::<_, Vec<Vec<i64>>>::prepare(self, prog);
        runs.iter()
            .map(|bursts| {
                exec.run(bursts.clone())
                    .expect("prepared nested-loop case simulates")
            })
            .collect()
    }

    fn run_itermem_then_prepared(
        &self,
        prog: &skipper::conformance::LoopThenProg,
        runs: &[Vec<i64>],
    ) -> Vec<(i64, Vec<i64>)> {
        let exec = Backend::<_, Vec<i64>>::prepare(self, prog);
        runs.iter()
            .map(|frames| {
                exec.run(frames.clone())
                    .expect("prepared then-inside-loop case simulates")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper::{df, itermem, pure, scm, tf, Compose, SeqBackend};

    #[test]
    fn df_on_sim_matches_seq() {
        let farm = df(4, |x: &i64| x * x, |z: i64, y| z + y, 0i64);
        let xs: Vec<i64> = (1..=20).collect();
        for nprocs in [1usize, 3, 5] {
            let sim = SimBackend::ring(nprocs).run(&farm, &xs[..]).expect("runs");
            assert_eq!(sim, SeqBackend.run(&farm, &xs[..]), "nprocs={nprocs}");
        }
    }

    #[test]
    fn df_empty_input_returns_init_through_sim() {
        let farm = df(3, |x: &i64| *x, |z: i64, y| z + y, 41i64);
        let sim = SimBackend::ring(4).run(&farm, &[][..]).expect("runs");
        assert_eq!(sim, 41);
    }

    #[test]
    fn scm_on_sim_matches_seq() {
        // Round-robin split: always exactly n fragments.
        let prog = scm(
            3,
            |v: &Vec<i64>, n| {
                let mut out = vec![Vec::new(); n];
                for (i, &x) in v.iter().enumerate() {
                    out[i % n].push(x);
                }
                out
            },
            |chunk: Vec<i64>| chunk.iter().map(|x| x * 2).sum::<i64>(),
            |parts: Vec<i64>| parts.iter().sum::<i64>(),
        );
        let data: Vec<i64> = (0..50).collect();
        for nprocs in [1usize, 4] {
            let sim = SimBackend::ring(nprocs).run(&prog, &data).expect("runs");
            assert_eq!(sim, SeqBackend.run(&prog, &data), "nprocs={nprocs}");
        }
    }

    #[test]
    fn tf_on_sim_matches_seq() {
        let prog = tf(
            4,
            |s: u64| {
                if s > 16 {
                    (vec![s / 4; 4], None)
                } else {
                    (vec![], Some(s))
                }
            },
            |z: u64, o| z + o,
            0u64,
        );
        let roots = vec![1024u64, 256, 64];
        let sim = SimBackend::ring(5).run(&prog, roots.clone()).expect("runs");
        assert_eq!(sim, SeqBackend.run(&prog, roots));
    }

    #[test]
    fn scm_split_count_mismatch_is_an_error_not_a_panic() {
        // The doc-style chunk splitter yields fewer than n fragments for
        // short inputs (2 items, n=4 -> 2 chunks); the run must fail
        // gracefully with an ExecError, never abort.
        let prog = scm(
            4,
            |v: &Vec<i64>, n| {
                v.chunks(v.len().div_ceil(n))
                    .map(<[i64]>::to_vec)
                    .collect::<Vec<_>>()
            },
            |chunk: Vec<i64>| chunk.iter().sum::<i64>(),
            |parts: Vec<i64>| parts.iter().sum::<i64>(),
        );
        let short: Vec<i64> = vec![1, 2];
        let err = SimBackend::ring(3).run(&prog, &short).unwrap_err();
        assert!(matches!(err, ExecError::BadShape { .. }), "got {err}");
        // Too many fragments must not be silently dropped either.
        let over = scm(
            2,
            |v: &Vec<i64>, _| v.iter().map(|&x| vec![x]).collect::<Vec<_>>(),
            |chunk: Vec<i64>| chunk.iter().sum::<i64>(),
            |parts: Vec<i64>| parts.iter().sum::<i64>(),
        );
        let long: Vec<i64> = (0..5).collect();
        let err = SimBackend::ring(3).run(&over, &long).unwrap_err();
        assert!(matches!(err, ExecError::BadShape { .. }), "got {err}");
    }

    #[test]
    fn then_pipeline_runs_on_sim() {
        let prog =
            df(3, |x: &i64| x + 1, |z: i64, y| z + y, 0i64).then(pure(|total: i64| total * 10));
        let xs: Vec<i64> = (1..=5).collect();
        let sim = SimBackend::ring(4).run(&prog, &xs[..]).expect("runs");
        assert_eq!(sim, SeqBackend.run(&prog, &xs[..]));
    }

    #[test]
    fn itermem_scm_loop_threads_state_on_sim() {
        // The paper's tracking-loop shape: an scm body nested in itermem.
        let body = scm(
            2,
            |t: &(i64, i64), n| {
                (0..n as i64)
                    .map(|k| (t.0, t.1 + k))
                    .collect::<Vec<(i64, i64)>>()
            },
            |(z, b): (i64, i64)| z + b,
            |parts: Vec<i64>| {
                let s: i64 = parts.iter().sum();
                (s, s * 2)
            },
        );
        let prog = itermem(body, 7i64);
        let frames = vec![1i64, 2, 3, 4];
        for nprocs in [1usize, 3] {
            let sim = SimBackend::ring(nprocs)
                .run(&prog, frames.clone())
                .expect("runs");
            assert_eq!(
                sim,
                SeqBackend.run(&prog, frames.clone()),
                "nprocs={nprocs}"
            );
        }
    }

    #[test]
    fn sim_backend_passes_the_conformance_kit() {
        for nprocs in [1usize, 4] {
            skipper::conformance::assert_backend_conforms(&SimBackend::ring(nprocs));
        }
    }

    #[test]
    fn cost_hint_changes_the_sim_schedule() {
        let cheap = df(4, |x: &i64| *x, |z: i64, y| z + y, 0i64);
        let costly = cheap.clone().with_cost_hint(5_000_000);
        let backend = SimBackend::ring(3);
        let plan_cheap = backend.plan::<&[i64], _>(&cheap).expect("cheap plan");
        let plan_costly = backend.plan::<&[i64], _>(&costly).expect("costly plan");
        assert!(
            plan_costly.makespan_ns > plan_cheap.makespan_ns,
            "a per-call cost hint must lengthen the predicted schedule: \
             {} ns (hinted) vs {} ns (unhinted)",
            plan_costly.makespan_ns,
            plan_cheap.makespan_ns
        );
        // The hint is advisory for results: the simulated run still agrees
        // with the declarative semantics.
        let xs: Vec<i64> = (1..=12).collect();
        assert_eq!(
            backend.run(&costly, &xs[..]).expect("costly farm runs"),
            SeqBackend.run(&costly, &xs[..])
        );
    }

    #[test]
    fn itermem_empty_stream_returns_init() {
        let body = scm(
            2,
            |t: &(i64, i64), n| vec![t.0 + t.1; n],
            |x: i64| x,
            |parts: Vec<i64>| (parts[0], parts[1]),
        );
        let prog = itermem(body, 9i64);
        let sim = SimBackend::ring(3).run(&prog, Vec::new()).expect("runs");
        assert_eq!(sim, (9, Vec::new()));
    }

    #[test]
    fn itermem_df_loop_threads_state_on_sim() {
        // A farm as the loop body: the carried state seeds the master's
        // accumulator each frame (the seeded-master protocol).
        let prog = itermem(df(3, |x: &i64| x * x, |z: i64, y| z + y, 0i64), 5i64);
        let frames: Vec<Vec<i64>> = vec![vec![1, 2, 3], Vec::new(), vec![4], vec![5, 6]];
        for nprocs in [1usize, 2, 4] {
            for shape in [FarmShape::Star, FarmShape::Ring] {
                let backend = SimBackend::ring(nprocs).with_farm_shape(shape);
                let sim = backend.run(&prog, frames.clone()).expect("runs");
                assert_eq!(
                    sim,
                    SeqBackend.run(&prog, frames.clone()),
                    "nprocs={nprocs} shape={shape:?}"
                );
            }
        }
    }

    #[test]
    fn itermem_tf_loop_on_sim_matches_seq() {
        let body = tf(
            2,
            |s: u64| {
                if s > 8 {
                    (vec![s / 2, s / 3], Some(s))
                } else {
                    (vec![], Some(s))
                }
            },
            |z: u64, o| z.wrapping_add(o),
            0u64,
        );
        let prog = itermem(body, 3u64);
        let frames: Vec<Vec<u64>> = vec![vec![40, 9], Vec::new(), vec![100]];
        let sim = SimBackend::ring(3)
            .run(&prog, frames.clone())
            .expect("runs");
        assert_eq!(sim, SeqBackend.run(&prog, frames));
    }

    #[test]
    fn nested_loop_lowers_and_matches_seq() {
        // itermem(itermem(scm)) — the inner loop is elaborated as one
        // sequential composite node.
        let body = scm(
            2,
            |t: &(i64, i64), n| (0..n as i64).map(|k| (t.0 + k, t.1)).collect::<Vec<_>>(),
            |(a, b): (i64, i64)| a * 2 + b,
            |parts: Vec<i64>| {
                let s: i64 = parts.iter().sum();
                (s, s - 1)
            },
        );
        let prog = itermem(itermem(body, 0i64), 11i64);
        let bursts: Vec<Vec<i64>> = vec![vec![1, -2], Vec::new(), vec![3]];
        let sim = SimBackend::ring(3)
            .run(&prog, bursts.clone())
            .expect("runs");
        assert_eq!(sim, SeqBackend.run(&prog, bursts));
    }

    #[test]
    fn then_headed_by_df_inside_loop_lowers() {
        // df.then(pure) as a loop body: the farm's (state', output) pair
        // flows through the lifted post-processing stage.
        let body = df(2, |x: &i64| x + 1, |z: i64, y| z + y, 0i64)
            .then(pure(|t: (i64, i64)| (t.0, t.1 * 10)));
        let prog = itermem(body, 4i64);
        let frames: Vec<Vec<i64>> = vec![vec![1, 2], vec![3]];
        let sim = SimBackend::ring(3)
            .run(&prog, frames.clone())
            .expect("runs");
        assert_eq!(sim, SeqBackend.run(&prog, frames));
    }

    #[test]
    fn ring_farm_shape_passes_the_conformance_kit() {
        // The Fig. 1 explicit-router PNT must satisfy the same contract
        // as the star expansion. Only the degenerate 1-worker-proc chain
        // is swept here; the canonical full instantiation (ring(2) and
        // ring(4), both shapes) lives in tests/conformance.rs.
        skipper::conformance::assert_backend_conforms(
            &SimBackend::ring(2).with_farm_shape(FarmShape::Ring),
        );
    }

    #[test]
    fn ring_farm_lowering_pins_routers_with_their_workers() {
        let farm = df(3, |x: &i64| *x, |z: i64, y| z + y, 0i64);
        let backend = SimBackend::ring(4).with_farm_shape(FarmShape::Ring);
        let plan = backend.plan::<&[i64], _>(&farm).expect("plans");
        let lowered = lower_one_shot::<&[i64], _>(&farm, FarmShape::Ring).expect("lowers");
        assert_eq!(
            lowered.colocated.len(),
            6,
            "one M->W and one W->M per worker"
        );
        for &(router, worker) in &lowered.colocated {
            assert_eq!(
                plan.proc_of(router),
                plan.proc_of(worker),
                "router {router} must sit on its worker's processor"
            );
        }
    }

    #[test]
    fn ring_zero_is_a_lowering_error() {
        let backend = SimBackend::ring(0);
        let farm = df(2, |x: &i64| *x, |z: i64, y| z + y, 0i64);
        let err = backend.run(&farm, &[1i64, 2][..]).unwrap_err();
        assert!(matches!(err, ExecError::EmptyMachine), "got {err:?}");
        assert_eq!(
            err.to_string(),
            "cannot lower onto a machine with no processors (SimBackend::ring(0))"
        );
        let err = backend.plan::<&[i64], _>(&farm).unwrap_err();
        assert!(matches!(err, ExecError::EmptyMachine));
        // Loops too — even the empty-stream shortcut must not mask it.
        let prog = itermem(df(2, |x: &i64| *x, |z: i64, y| z + y, 0i64), 0i64);
        let err = backend.run(&prog, Vec::<Vec<i64>>::new()).unwrap_err();
        assert!(matches!(err, ExecError::EmptyMachine));
    }

    #[test]
    fn bare_pure_loop_body_fails_lowering_with_a_dedicated_error() {
        // The ROADMAP gap, closed: a bare pure(...) loop body now types
        // as a SimBackend program but fails lowering with a dedicated,
        // message-pinned error instead of an opaque trait-bound failure.
        let prog = itermem(pure(|t: &(i64, i64)| (t.0 + t.1, t.0)), 0i64);
        let err = SimBackend::ring(3).run(&prog, vec![1i64, 2]).unwrap_err();
        assert!(matches!(err, ExecError::PureLoopBody), "got {err:?}");
        assert_eq!(
            err.to_string(),
            "a bare pure(...) loop body cannot be lowered: its by-reference \
             (state, frame) input has no executive encoding — wrap it in an \
             scm/df/tf skeleton head"
        );
        // The prepared path defers the same error to every run.
        let exec = Backend::<_, Vec<i64>>::prepare(&SimBackend::ring(3), &prog);
        let err = exec.run(vec![1i64]).unwrap_err();
        assert!(matches!(err, ExecError::PureLoopBody));
        let err = exec.schedule().unwrap_err();
        assert!(matches!(err, ExecError::PureLoopBody));
        // An empty stream is still short-circuited before lowering is
        // consulted on `run` — but the prepared error wins.
        let err = exec.run(Vec::<i64>::new()).unwrap_err();
        assert!(matches!(err, ExecError::PureLoopBody));
    }

    #[test]
    fn cost_model_changes_the_sim_schedule_and_virtual_time() {
        // An argument-dependent cost model must reach the SynDEx
        // scheduler (as the model evaluated at unit size) ...
        let flat = df(
            4,
            |v: &Vec<i64>| v.iter().sum::<i64>(),
            |z: i64, y| z + y,
            0i64,
        );
        let modelled = flat.clone().with_cost_model(|size| size as u64 * 400_000);
        let backend = SimBackend::ring(3);
        let plan_flat = backend.plan::<&[Vec<i64>], _>(&flat).expect("flat plan");
        let plan_modelled = backend
            .plan::<&[Vec<i64>], _>(&modelled)
            .expect("modelled plan");
        assert!(
            plan_modelled.makespan_ns > plan_flat.makespan_ns,
            "a cost model must lengthen the predicted schedule: \
             {} ns (modelled) vs {} ns (flat)",
            plan_modelled.makespan_ns,
            plan_flat.makespan_ns
        );
        // ... and the executive's virtual clock, where it is evaluated on
        // each actual argument's size: bigger items take longer simulated
        // time under the same schedule.
        let small: Vec<Vec<i64>> = vec![vec![1; 2]; 6];
        let large: Vec<Vec<i64>> = vec![vec![1; 40]; 6];
        let t_small = backend
            .run_loop_with_report(&itermem(modelled.clone(), 0i64), vec![small.clone()])
            .expect("small frames simulate")
            .1
            .mean_latency_ns();
        let t_large = backend
            .run_loop_with_report(&itermem(modelled.clone(), 0i64), vec![large.clone()])
            .expect("large frames simulate")
            .1
            .mean_latency_ns();
        assert!(
            t_large > t_small,
            "virtual time must follow argument size: {t_large} ns (40-elem items) \
             vs {t_small} ns (2-elem items)"
        );
        // The model is advisory for results: simulated output still
        // agrees with the declarative semantics.
        assert_eq!(
            backend
                .run(&modelled, &large[..])
                .expect("modelled farm runs"),
            SeqBackend.run(&modelled, &large[..])
        );
        // Round-trip of the builder.
        assert!(flat.cost_model().is_none());
        assert_eq!(modelled.cost_model().map(|m| m(3)), Some(1_200_000));
    }

    #[test]
    fn prepared_executable_reuses_one_schedule_across_runs() {
        let farm = df(3, |x: &i64| x * 2 + 1, |z: i64, y| z + y, 4i64);
        let backend = SimBackend::ring(4);
        let exec = Backend::<_, &[i64]>::prepare(&backend, &farm);
        let plan = backend.plan::<&[i64], _>(&farm).expect("plans");
        // The executable's schedule is the plan, computed once at prepare
        // time; runs of different inputs share it.
        assert_eq!(
            exec.schedule().expect("prepared").makespan_ns,
            plan.makespan_ns
        );
        for len in [0i64, 1, 7, 20] {
            let xs: Vec<i64> = (0..len).collect();
            assert_eq!(
                exec.run(&xs[..]).expect("prepared farm runs"),
                SeqBackend.run(&farm, &xs[..]),
                "len={len}"
            );
        }
        assert_eq!(
            exec.schedule().expect("prepared").makespan_ns,
            plan.makespan_ns
        );
    }

    #[test]
    fn prepared_loop_executable_reuses_state_machinery_between_streams() {
        let prog = itermem(df(2, |x: &i64| x * x, |z: i64, y| z + y, 0i64), 5i64);
        let backend = SimBackend::ring(3).with_farm_shape(FarmShape::Ring);
        let exec = Backend::<_, Vec<Vec<i64>>>::prepare(&backend, &prog);
        let streams: Vec<Vec<Vec<i64>>> = vec![
            vec![vec![1, 2, 3], Vec::new(), vec![4]],
            Vec::new(),
            vec![vec![9]],
            vec![vec![1, 2, 3], Vec::new(), vec![4]], // repeat: no state leak
        ];
        for frames in streams {
            assert_eq!(
                exec.run(frames.clone()).expect("prepared loop runs"),
                SeqBackend.run(&prog, frames.clone()),
                "frames={frames:?}"
            );
        }
        // The report face works on the prepared form too.
        let ((z, ys), report) = exec
            .run_with_report(vec![vec![1i64, 2], vec![3]])
            .expect("reportable run");
        assert_eq!((z, ys), SeqBackend.run(&prog, vec![vec![1i64, 2], vec![3]]));
        assert_eq!(report.latencies_ns.len(), 2);
    }

    #[test]
    fn ring_shape_lengthens_the_plan_over_star() {
        // Application-level relaying puts router processes on the
        // schedule: the ring plan cannot be shorter than the star plan
        // for the same costed farm.
        let farm = df(3, |x: &i64| *x, |z: i64, y| z + y, 0i64).with_cost_hint(100_000);
        let star = SimBackend::ring(4)
            .plan::<&[i64], _>(&farm)
            .expect("star plan");
        let ring = SimBackend::ring(4)
            .with_farm_shape(FarmShape::Ring)
            .plan::<&[i64], _>(&farm)
            .expect("ring plan");
        assert!(
            ring.makespan_ns >= star.makespan_ns,
            "ring {} vs star {}",
            ring.makespan_ns,
            star.makespan_ns
        );
    }
}
