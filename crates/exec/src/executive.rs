//! The distributed executive: running macro-code on the simulated machine.
//!
//! This is the run-time half of the SynDEx contract: the per-processor
//! macro-programs are interpreted over the [`transvision`] simulator, with
//! *real application values* carried in the messages so that results can be
//! compared bit-for-bit with sequential emulation.
//!
//! Two communication regimes coexist, as in the paper's "mixed
//! static/dynamic scheduling of communications":
//!
//! - **static** edges execute exactly the `SEND`/`RECV` sequence fixed by
//!   the scheduler;
//! - **farm instances** (`df`) run their master/worker protocol
//!   *dynamically*: the master dispatches one work item to whichever worker
//!   is idle, accumulates results in arrival order, then broadcasts
//!   end-of-work markers — reproducing the dynamic load balancing of the
//!   Fig. 1 process network.
//!
//! Both farm PNT shapes are executable. With
//! [`skipper_net::FarmShape::Star`], messages are addressed point-to-point
//! and physical multi-hop routing is provided by the simulator's
//! store-and-forward links (which play the role of the `M->W`/`W->M`
//! router processes). With [`skipper_net::FarmShape::Ring`] — Fig. 1's
//! explicit-router PNT — forwarding is an *application-level* activity:
//! each worker processor relays items travelling down the chain and
//! results climbing back up (the internal `RingState` protocol), paying CPU
//! setup cost per hop exactly as the paper's router processes do; a drain
//! acknowledgement circulates back to the master so successive graph
//! iterations cannot overlap on the chain.

use crate::registry::{Registry, UnknownFunction};
use crate::value::Value;
use skipper_net::graph::{EdgeKind, NodeId, NodeKind, ProcessNetwork};
use skipper_syndex::macrocode::{MacroOp, MacroProgram};
use skipper_syndex::schedule::Schedule;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use transvision::cost::Ns;
use transvision::sim::{Action, Behavior, ProcView, SimConfig, SimReport, Simulation, TagFilter};
use transvision::stream::FrameClock;
use transvision::topology::{ProcId, Topology};

/// Executive failure modes.
///
/// `Clone` so a prepared executable ([`crate::SimExecutable`]) whose
/// compilation failed can hand the same error back on every run.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// A node referenced an unregistered function.
    UnknownFunction(String),
    /// An edge value was needed before being produced.
    MissingValue {
        /// Index into `net.edges()`.
        edge: usize,
    },
    /// A node produced/consumed values of an unexpected shape.
    BadShape {
        /// The offending node.
        node: NodeId,
        /// Description of the mismatch.
        what: String,
    },
    /// No initial state was supplied for a `MEM` node.
    MissingMemInit(NodeId),
    /// No initial accumulator was supplied for a farm instance.
    MissingFarmInit {
        /// The skeleton instance id.
        instance: usize,
    },
    /// A farm has workers both on and off the master's processor.
    MixedFarmPlacement {
        /// The farm's master node.
        master: NodeId,
    },
    /// The target machine has no processors (`SimBackend::ring(0)`).
    EmptyMachine,
    /// A bare `pure(...)` program heads an `itermem` loop body: its
    /// by-reference `(state, frame)` input has no executive encoding, so
    /// it cannot be lowered onto the machine.
    PureLoopBody,
    /// The node kind is not executable (e.g. ring-farm routers).
    UnsupportedNode {
        /// The offending node.
        node: NodeId,
        /// Why it cannot run.
        what: String,
    },
    /// The underlying simulation failed (deadlock, limits, routing).
    Sim(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::MissingValue { edge } => write!(f, "value for edge {edge} not produced"),
            ExecError::BadShape { node, what } => write!(f, "bad value shape at {node}: {what}"),
            ExecError::MissingMemInit(n) => write!(f, "missing initial state for MEM node {n}"),
            ExecError::MissingFarmInit { instance } => {
                write!(
                    f,
                    "missing initial accumulator for farm instance {instance}"
                )
            }
            ExecError::MixedFarmPlacement { master } => write!(
                f,
                "farm of master {master} has workers both on and off the master's processor"
            ),
            ExecError::EmptyMachine => write!(
                f,
                "cannot lower onto a machine with no processors (SimBackend::ring(0))"
            ),
            ExecError::PureLoopBody => write!(
                f,
                "a bare pure(...) loop body cannot be lowered: its by-reference \
                 (state, frame) input has no executive encoding — wrap it in an \
                 scm/df/tf skeleton head"
            ),
            ExecError::UnsupportedNode { node, what } => {
                write!(f, "node {node} not executable: {what}")
            }
            ExecError::Sim(s) => write!(f, "simulation failed: {s}"),
            ExecError::Internal(s) => write!(f, "internal executive error: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<UnknownFunction> for ExecError {
    fn from(e: UnknownFunction) -> Self {
        ExecError::UnknownFunction(e.0)
    }
}

/// Executive run parameters.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of graph iterations (video frames) to execute.
    pub iterations: usize,
    /// When set, `Input` nodes wait for the frame clock (25 Hz video).
    pub frame_clock: Option<FrameClock>,
    /// Simulator configuration (machine timing).
    pub sim: SimConfig,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            iterations: 1,
            frame_clock: None,
            sim: SimConfig::default(),
        }
    }
}

/// Result of an executive run.
#[derive(Debug)]
pub struct ExecReport {
    /// The raw simulation report (trace, utilisations, end time).
    pub sim: SimReport,
    /// Per-iteration latency: output completion minus frame arrival (or
    /// input production when unclocked). Missing iterations are skipped.
    pub latencies_ns: Vec<Ns>,
}

impl ExecReport {
    /// Mean per-iteration latency (0 when nothing was measured).
    pub fn mean_latency_ns(&self) -> Ns {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        self.latencies_ns.iter().sum::<Ns>() / self.latencies_ns.len() as Ns
    }

    /// Maximum per-iteration latency.
    pub fn max_latency_ns(&self) -> Ns {
        self.latencies_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Per-farm runtime information derived from the network + schedule.
#[derive(Debug, Clone)]
struct FarmRt {
    compute: String,
    acc: String,
    init: Value,
    master_proc: ProcId,
    worker_procs: Vec<ProcId>,
    /// All workers co-located with the master: run items inline.
    local: bool,
    /// Fig. 1 ring-shaped instance (the PNT has `M->W`/`W->M` router
    /// processes): farm traffic is relayed hop-by-hop along the worker
    /// chain by the workers themselves, instead of being addressed
    /// point-to-point.
    ring: bool,
    base_tag: u32,
}

impl FarmRt {
    fn result_tag(&self) -> u32 {
        self.base_tag
    }

    fn item_tag(&self, widx: usize) -> u32 {
        self.base_tag + 1 + widx as u32
    }

    /// The end-of-drain acknowledgement circulated up a ring farm's
    /// worker chain (the last tag of this instance's 1024-tag window).
    fn ack_tag(&self) -> u32 {
        self.base_tag + 1023
    }

    /// Where worker `widx`'s upstream (towards-master) messages go.
    fn upstream_of(&self, widx: usize) -> ProcId {
        if widx == 0 {
            self.master_proc
        } else {
            self.worker_procs[widx - 1]
        }
    }

    /// The processor farm traffic enters on (the first worker of the ring
    /// chain; in star mode the master addresses workers directly).
    fn first_hop(&self) -> ProcId {
        self.worker_procs[0]
    }
}

/// Everything about a scheduled program that is **identical across
/// runs**: the process network, the SynDEx schedule, the per-processor
/// macro-code, the machine topology, the function registry and the
/// derived farm-protocol tables. Built once by [`SimStatics::analyze`]
/// (the prepare-time half of the executive) and shared by reference
/// count from then on — [`run_prepared`] only allocates per-run
/// interpreter state, never re-deriving or deep-cloning any of this.
pub struct SimStatics {
    net: ProcessNetwork,
    schedule: Schedule,
    programs: Vec<MacroProgram>,
    topo: Topology,
    registry: Arc<Registry>,
    farms: HashMap<NodeId, FarmRt>,
    /// Worker node → (master, logical worker index). `None` marks an
    /// inactive worker: a surplus worker node on a processor that already
    /// hosts one (only one worker process runs per processor, as on the
    /// real machine), or any worker of a local farm.
    farm_by_worker: HashMap<NodeId, (NodeId, Option<usize>)>,
    farm_internal_edges: HashSet<usize>,
}

impl SimStatics {
    /// The SynDEx schedule every run of this prepared program follows.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

impl std::fmt::Debug for SimStatics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimStatics")
            .field("procs", &self.programs.len())
            .field("farms", &self.farms.len())
            .finish()
    }
}

/// Immutable context shared by all processor behaviours of one run: the
/// prepared statics plus the few per-run knobs ([`ExecConfig`]). The
/// `Deref` lets behaviour code reach the static tables (`.net`,
/// `.farms`, …) without caring which side of the prepare/run split a
/// field lives on.
struct Shared {
    stat: Arc<SimStatics>,
    clock: Option<FrameClock>,
    cost: transvision::cost::CostModel,
    iterations: usize,
}

impl std::ops::Deref for Shared {
    type Target = SimStatics;

    fn deref(&self) -> &SimStatics {
        &self.stat
    }
}

#[derive(Debug, Default)]
struct SharedLog {
    input_marks: Vec<(usize, Ns)>,
    output_marks: Vec<(usize, Ns)>,
    error: Option<ExecError>,
}

#[derive(Debug)]
enum MasterSub {
    Dispatch,
    AwaitResult,
    /// Ring farms: all ends sent, waiting for the drain ack to climb back
    /// up the worker chain before publishing the result.
    AwaitAck,
    Local,
}

struct MasterState {
    master: NodeId,
    items: VecDeque<Value>,
    idle: Vec<usize>,
    outstanding: usize,
    acc: Option<Value>,
    ends_sent: usize,
    sub: MasterSub,
}

#[derive(Debug)]
enum WorkerSub {
    Start,
    AwaitItem,
    Computed(Value),
}

struct WorkerState {
    worker: NodeId,
    master: NodeId,
    widx: usize,
    sub: WorkerSub,
}

#[derive(Debug)]
enum RingSub {
    /// Decide: drain finished (send the ack) or wait for the next message.
    AwaitMsg,
    /// A farm message arrived: deliver, compute, or relay it.
    Classify,
    /// Local computation finished; send the result upstream.
    Computed(Value),
    /// Drain ack sent upstream; leave the farm phase.
    AckSent,
}

/// One worker of a **ring-shaped** farm: it plays both its own `Worker`
/// role and the `M->W`/`W->M` router roles of its processor (Fig. 1),
/// relaying items addressed further down the chain and results/acks
/// climbing back up, until its own end marker and the downstream drain
/// ack have both arrived.
struct RingState {
    worker: NodeId,
    master: NodeId,
    widx: usize,
    own_end: bool,
    downstream_done: bool,
    sub: RingSub,
}

enum Phase {
    Fetch,
    AfterRecv { edge: usize },
    AfterInputWait { node: NodeId },
    Master(MasterState),
    Worker(WorkerState),
    Ring(RingState),
    Halted,
}

/// One processor's executive interpreter. The macro-code it interprets
/// lives in the shared statics (`shared.programs[prog].ops`) — the
/// behaviour holds an index, not a per-run copy of the program.
struct ProcBehavior {
    me: ProcId,
    prog: usize,
    shared: Rc<Shared>,
    log: Rc<RefCell<SharedLog>>,
    mem: HashMap<NodeId, Value>,
    env: HashMap<usize, Value>,
    iter: usize,
    pc: usize,
    phase: Phase,
}

impl ProcBehavior {
    fn cost_of(&self, name: &str, args: &[Value], fallback_ns: Ns) -> Ns {
        match self.shared.registry.cost_units(name, args) {
            Some(units) => self.shared.cost.work_ns(units),
            None => fallback_ns,
        }
    }

    /// Collects input values of `node` (non-farm data edges, port order).
    fn gather(&self, node: NodeId) -> Result<Vec<Value>, ExecError> {
        let mut ins: Vec<(usize, usize)> = self
            .shared
            .net
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.to == node
                    && e.kind == EdgeKind::Data
                    && !self.shared.farm_internal_edges.contains(i)
            })
            .map(|(i, e)| (e.to_port, i))
            .collect();
        ins.sort_unstable();
        ins.iter()
            .map(|&(_, i)| {
                self.env
                    .get(&i)
                    .cloned()
                    .ok_or(ExecError::MissingValue { edge: i })
            })
            .collect()
    }

    /// Publishes `outputs` (indexed by out-port) on all non-farm out-edges
    /// of `node` (data and memory).
    fn publish(&mut self, node: NodeId, outputs: &[Value]) -> Result<(), ExecError> {
        let targets: Vec<(usize, usize)> = self
            .shared
            .net
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, e)| e.from == node && !self.shared.farm_internal_edges.contains(i))
            .map(|(i, e)| (i, e.from_port))
            .collect();
        for (i, port) in targets {
            let v = outputs.get(port).ok_or_else(|| ExecError::BadShape {
                node,
                what: format!(
                    "node produced {} output(s) but port {port} is connected",
                    outputs.len()
                ),
            })?;
            self.env.insert(i, v.clone());
        }
        Ok(())
    }

    /// Iteration boundary: move memory-edge values into MEM state.
    fn commit_memory(&mut self) -> Result<(), ExecError> {
        let commits: Vec<(usize, NodeId)> = self
            .shared
            .net
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.kind == EdgeKind::Memory && self.shared.schedule.proc_of(e.to) == self.me
            })
            .map(|(i, e)| (i, e.to))
            .collect();
        for (i, mem_node) in commits {
            let v = self
                .env
                .get(&i)
                .cloned()
                .ok_or(ExecError::MissingValue { edge: i })?;
            self.mem.insert(mem_node, v);
        }
        Ok(())
    }

    fn exec_input(
        &mut self,
        node: NodeId,
        now_ns: Ns,
        fallback_ns: Ns,
    ) -> Result<Action<Value>, ExecError> {
        let name = self
            .shared
            .net
            .node(node)
            .kind
            .function_name()
            .expect("input carries a function")
            .to_string();
        // Input functions receive the iteration index and the current
        // virtual time, so a video source can grab the *latest* frame
        // (frame dropping when the pipeline lags, as on the real machine).
        let args = [Value::Int(self.iter as i64), Value::Int(now_ns as i64)];
        let outputs = self.shared.registry.call(&name, &args)?;
        self.publish(node, &outputs)?;
        self.log.borrow_mut().input_marks.push((self.iter, now_ns));
        let cost = self.cost_of(&name, &args, fallback_ns);
        self.phase = Phase::Fetch;
        Ok(Action::Compute {
            label: name,
            cost_ns: cost,
        })
    }

    /// Executes a `Comp` op. Returns `None` when the phase changed and the
    /// main loop should continue (farm entry), otherwise the timing action.
    fn exec_comp(
        &mut self,
        node: NodeId,
        fallback_ns: Ns,
        now_ns: Ns,
    ) -> Result<Option<Action<Value>>, ExecError> {
        let shared = Rc::clone(&self.shared);
        match &shared.net.node(node).kind {
            NodeKind::Input(_) => {
                if let Some(clock) = self.shared.clock {
                    let due = clock.frame_time(self.iter as u64);
                    if now_ns < due {
                        self.phase = Phase::AfterInputWait { node };
                        return Ok(Some(Action::Wait { until_ns: due }));
                    }
                }
                Ok(Some(self.exec_input(node, now_ns, fallback_ns)?))
            }
            NodeKind::Output(name) => {
                let args = self.gather(node)?;
                let outputs = self.shared.registry.call(name, &args)?;
                self.publish(node, &outputs)?;
                let cost = self.cost_of(name, &args, fallback_ns);
                self.log
                    .borrow_mut()
                    .output_marks
                    .push((self.iter, now_ns + cost));
                Ok(Some(Action::Compute {
                    label: name.clone(),
                    cost_ns: cost,
                }))
            }
            NodeKind::UserFn(name) => {
                let args = self.gather(node)?;
                let outputs = self.shared.registry.call(name, &args)?;
                let cost = self.cost_of(name, &args, fallback_ns);
                self.publish(node, &outputs)?;
                Ok(Some(Action::Compute {
                    label: name.clone(),
                    cost_ns: cost,
                }))
            }
            NodeKind::Split(name) => {
                let args = self.gather(node)?;
                let outputs = self.shared.registry.call(name, &args)?;
                let list = outputs
                    .first()
                    .and_then(|v| v.as_list().map(<[Value]>::to_vec))
                    .ok_or_else(|| ExecError::BadShape {
                        node,
                        what: "split function must return one list".into(),
                    })?;
                let cost = self.cost_of(name, &args, fallback_ns);
                self.publish(node, &list)?;
                Ok(Some(Action::Compute {
                    label: name.clone(),
                    cost_ns: cost,
                }))
            }
            NodeKind::Merge(name) => {
                let parts = self.gather(node)?;
                let args = [Value::list(parts)];
                let outputs = self.shared.registry.call(name, &args)?;
                let cost = self.cost_of(name, &args, fallback_ns);
                self.publish(node, &outputs)?;
                Ok(Some(Action::Compute {
                    label: name.clone(),
                    cost_ns: cost,
                }))
            }
            NodeKind::Mem => {
                let v = self
                    .mem
                    .get(&node)
                    .cloned()
                    .ok_or(ExecError::MissingMemInit(node))?;
                self.publish(node, &[v])?;
                Ok(Some(Action::Compute {
                    label: "mem".into(),
                    cost_ns: 0,
                }))
            }
            NodeKind::Master(_) => {
                let farm = shared
                    .farms
                    .get(&node)
                    .ok_or_else(|| ExecError::Internal(format!("no farm for master {node}")))?;
                let inputs = self.gather(node)?;
                let first = inputs.first().ok_or_else(|| ExecError::BadShape {
                    node,
                    what: "master needs an input".into(),
                })?;
                // A farm may be seeded *dynamically*: a loop-body farm
                // receives the `(state, items)` pair of the Fig. 4 loop
                // contract and uses the carried state as its accumulator
                // seed, while a plain farm receives the bare item list
                // and seeds from the static per-instance init table.
                let (seed, items): (Value, VecDeque<Value>) = match first {
                    Value::Tuple(t) => match &t[..] {
                        [z, items_v] => match items_v.as_list() {
                            Some(list) => (z.clone(), list.iter().cloned().collect()),
                            None => {
                                return Err(ExecError::BadShape {
                                    node,
                                    what: "seeded master input must be (state, item list)".into(),
                                })
                            }
                        },
                        _ => {
                            return Err(ExecError::BadShape {
                                node,
                                what: "seeded master input must be a 2-tuple".into(),
                            })
                        }
                    },
                    other => match other.as_list() {
                        Some(list) => (farm.init.clone(), list.iter().cloned().collect()),
                        None => {
                            return Err(ExecError::BadShape {
                                node,
                                what: "master input must be a list or a (state, items) tuple"
                                    .into(),
                            })
                        }
                    },
                };
                let sub = if farm.local {
                    MasterSub::Local
                } else {
                    MasterSub::Dispatch
                };
                self.phase = Phase::Master(MasterState {
                    master: node,
                    items,
                    idle: (0..farm.worker_procs.len()).rev().collect(),
                    outstanding: 0,
                    acc: Some(seed),
                    ends_sent: 0,
                    sub,
                });
                Ok(None)
            }
            NodeKind::Worker(_) => {
                let (master, widx) = *self
                    .shared
                    .farm_by_worker
                    .get(&node)
                    .ok_or_else(|| ExecError::Internal(format!("no farm for worker {node}")))?;
                let Some(widx) = widx else {
                    // Inactive worker: local farm, or surplus worker node
                    // on a processor that already runs one.
                    return Ok(Some(Action::Compute {
                        label: "worker-idle".into(),
                        cost_ns: 0,
                    }));
                };
                let farm = &self.shared.farms[&master];
                if farm.ring {
                    let last = widx + 1 == farm.worker_procs.len();
                    self.phase = Phase::Ring(RingState {
                        worker: node,
                        master,
                        widx,
                        own_end: false,
                        downstream_done: last,
                        sub: RingSub::AwaitMsg,
                    });
                } else {
                    self.phase = Phase::Worker(WorkerState {
                        worker: node,
                        master,
                        widx,
                        sub: WorkerSub::Start,
                    });
                }
                Ok(None)
            }
            // The routers' forwarding work is performed by the ring relay
            // phase entered at the worker node of the same processor (see
            // `RingState`); the router nodes themselves exist for
            // structural and mapping fidelity with Fig. 1.
            NodeKind::RouterMw | NodeKind::RouterWm => Ok(Some(Action::Compute {
                label: "router".into(),
                cost_ns: 0,
            })),
        }
    }

    fn master_step(
        &mut self,
        mut ms: MasterState,
        view: &ProcView<'_, Value>,
    ) -> Result<Option<Action<Value>>, ExecError> {
        let master = ms.master;
        // Borrow the farm tables through a refcount bump on the shared
        // context — the per-step `FarmRt` deep clone was hot-path cost.
        let shared = Rc::clone(&self.shared);
        let farm = &shared.farms[&master];
        match ms.sub {
            MasterSub::Dispatch => {
                if !ms.items.is_empty() && !ms.idle.is_empty() {
                    let w = ms.idle.pop().expect("idle non-empty");
                    let item = ms.items.pop_front().expect("items non-empty");
                    ms.outstanding += 1;
                    let bytes = item.byte_size();
                    // Ring farms: everything enters the worker chain at
                    // its head and is relayed to the addressed worker.
                    let to = if farm.ring {
                        farm.first_hop()
                    } else {
                        farm.worker_procs[w]
                    };
                    let tag = farm.item_tag(w);
                    self.phase = Phase::Master(ms);
                    return Ok(Some(Action::Send {
                        to,
                        tag,
                        bytes,
                        payload: item,
                    }));
                }
                if ms.outstanding > 0 {
                    ms.sub = MasterSub::AwaitResult;
                    self.phase = Phase::Master(ms);
                    return Ok(Some(Action::Recv {
                        from: None,
                        tag: TagFilter::Exact(farm.result_tag()),
                    }));
                }
                if ms.ends_sent < farm.worker_procs.len() {
                    let w = ms.ends_sent;
                    ms.ends_sent += 1;
                    let to = if farm.ring {
                        farm.first_hop()
                    } else {
                        farm.worker_procs[w]
                    };
                    let tag = farm.item_tag(w);
                    self.phase = Phase::Master(ms);
                    return Ok(Some(Action::Send {
                        to,
                        tag,
                        bytes: 1,
                        payload: Value::End,
                    }));
                }
                if farm.ring {
                    // Wait for the drain ack so the chain is quiescent
                    // before the next graph iteration reuses its tags.
                    ms.sub = MasterSub::AwaitAck;
                    self.phase = Phase::Master(ms);
                    return Ok(Some(Action::Recv {
                        from: Some(farm.first_hop()),
                        tag: TagFilter::Exact(farm.ack_tag()),
                    }));
                }
                let result = ms.acc.take().expect("accumulator present");
                self.publish(master, &[result])?;
                self.phase = Phase::Fetch;
                Ok(None)
            }
            MasterSub::AwaitAck => {
                view.last_message
                    .ok_or_else(|| ExecError::Internal("master awaited ring ack, none".into()))?;
                let result = ms.acc.take().expect("accumulator present");
                self.publish(master, &[result])?;
                self.phase = Phase::Fetch;
                Ok(None)
            }
            MasterSub::AwaitResult => {
                let msg = view
                    .last_message
                    .ok_or_else(|| ExecError::Internal("master awaited result, none".into()))?;
                let pair = msg.payload.as_tuple().ok_or_else(|| ExecError::BadShape {
                    node: master,
                    what: "worker result must be (index, value)".into(),
                })?;
                let widx = pair[0].as_int().ok_or_else(|| ExecError::BadShape {
                    node: master,
                    what: "worker index must be an int".into(),
                })? as usize;
                let result = pair[1].clone();
                ms.idle.push(widx);
                ms.outstanding -= 1;
                let prev = ms.acc.take().expect("accumulator present");
                let args = [prev, result];
                let outputs = self.shared.registry.call(&farm.acc, &args)?;
                let new_acc = outputs
                    .into_iter()
                    .next()
                    .ok_or_else(|| ExecError::BadShape {
                        node: master,
                        what: "accumulation function must return one value".into(),
                    })?;
                let cost = self.cost_of(&farm.acc, &args, 0);
                ms.acc = Some(new_acc);
                ms.sub = MasterSub::Dispatch;
                self.phase = Phase::Master(ms);
                Ok(Some(Action::Compute {
                    label: farm.acc.clone(),
                    cost_ns: cost,
                }))
            }
            MasterSub::Local => {
                if let Some(item) = ms.items.pop_front() {
                    let args = [item];
                    let outputs = self.shared.registry.call(&farm.compute, &args)?;
                    let r = outputs
                        .into_iter()
                        .next()
                        .ok_or_else(|| ExecError::BadShape {
                            node: master,
                            what: "compute function must return one value".into(),
                        })?;
                    let comp_cost = self.cost_of(&farm.compute, &args, 0);
                    let prev = ms.acc.take().expect("accumulator present");
                    let acc_args = [prev, r];
                    let acc_out = self.shared.registry.call(&farm.acc, &acc_args)?;
                    let new_acc =
                        acc_out
                            .into_iter()
                            .next()
                            .ok_or_else(|| ExecError::BadShape {
                                node: master,
                                what: "accumulation function must return one value".into(),
                            })?;
                    let acc_cost = self.cost_of(&farm.acc, &acc_args, 0);
                    ms.acc = Some(new_acc);
                    self.phase = Phase::Master(ms);
                    return Ok(Some(Action::Compute {
                        label: farm.compute.clone(),
                        cost_ns: comp_cost + acc_cost,
                    }));
                }
                let result = ms.acc.take().expect("accumulator present");
                self.publish(master, &[result])?;
                self.phase = Phase::Fetch;
                Ok(None)
            }
        }
    }

    fn worker_step(
        &mut self,
        mut ws: WorkerState,
        view: &ProcView<'_, Value>,
    ) -> Result<Option<Action<Value>>, ExecError> {
        let shared = Rc::clone(&self.shared);
        let farm = &shared.farms[&ws.master];
        match ws.sub {
            WorkerSub::Start => {
                let tag = farm.item_tag(ws.widx);
                ws.sub = WorkerSub::AwaitItem;
                self.phase = Phase::Worker(ws);
                Ok(Some(Action::Recv {
                    from: Some(farm.master_proc),
                    tag: TagFilter::Exact(tag),
                }))
            }
            WorkerSub::AwaitItem => {
                let msg = view
                    .last_message
                    .ok_or_else(|| ExecError::Internal("worker awaited item, none".into()))?;
                if msg.payload.is_end() {
                    self.phase = Phase::Fetch;
                    return Ok(None);
                }
                let args = [msg.payload.clone()];
                let outputs = self.shared.registry.call(&farm.compute, &args)?;
                let r = outputs
                    .into_iter()
                    .next()
                    .ok_or_else(|| ExecError::BadShape {
                        node: ws.worker,
                        what: "compute function must return one value".into(),
                    })?;
                let cost = self.cost_of(&farm.compute, &args, 0);
                let label = farm.compute.clone();
                ws.sub = WorkerSub::Computed(r);
                self.phase = Phase::Worker(ws);
                Ok(Some(Action::Compute {
                    label,
                    cost_ns: cost,
                }))
            }
            WorkerSub::Computed(r) => {
                let payload = Value::tuple(vec![Value::Int(ws.widx as i64), r]);
                let bytes = payload.byte_size();
                let to = farm.master_proc;
                let tag = farm.result_tag();
                ws.sub = WorkerSub::Start;
                self.phase = Phase::Worker(ws);
                Ok(Some(Action::Send {
                    to,
                    tag,
                    bytes,
                    payload,
                }))
            }
        }
    }

    /// One step of the ring relay protocol (Fig. 1's `M->W`/`W->M`
    /// routers folded into the worker process of each chain processor).
    ///
    /// Invariant used for termination: links deliver in FIFO order and
    /// the master sends end markers only after the last item, so by the
    /// time this worker holds its own end marker *and* the downstream
    /// drain ack, no farm message can still be in flight through it —
    /// forwarding the ack upstream is then safe.
    fn ring_step(
        &mut self,
        mut rs: RingState,
        view: &ProcView<'_, Value>,
    ) -> Result<Option<Action<Value>>, ExecError> {
        let shared = Rc::clone(&self.shared);
        let farm = &shared.farms[&rs.master];
        let upstream = farm.upstream_of(rs.widx);
        match std::mem::replace(&mut rs.sub, RingSub::AwaitMsg) {
            RingSub::AwaitMsg => {
                if rs.own_end && rs.downstream_done {
                    rs.sub = RingSub::AckSent;
                    self.phase = Phase::Ring(rs);
                    return Ok(Some(Action::Send {
                        to: upstream,
                        tag: farm.ack_tag(),
                        bytes: 1,
                        payload: Value::End,
                    }));
                }
                // Match only this instance's 1024-tag window: messages for
                // *later* static operations of this processor must stay
                // queued, not be consumed by the farm phase.
                rs.sub = RingSub::Classify;
                self.phase = Phase::Ring(rs);
                Ok(Some(Action::Recv {
                    from: None,
                    tag: TagFilter::Range {
                        lo: farm.base_tag,
                        hi: farm.ack_tag(),
                    },
                }))
            }
            RingSub::Classify => {
                let msg = view.last_message.ok_or_else(|| {
                    ExecError::Internal("ring worker awaited farm message, none".into())
                })?;
                let tag = msg.tag;
                let payload = msg.payload.clone();
                if tag == farm.ack_tag() {
                    rs.downstream_done = true;
                    self.phase = Phase::Ring(rs);
                    return Ok(None);
                }
                if tag == farm.result_tag() {
                    // A result climbing towards the master: relay it.
                    let bytes = payload.byte_size();
                    self.phase = Phase::Ring(rs);
                    return Ok(Some(Action::Send {
                        to: upstream,
                        tag,
                        bytes,
                        payload,
                    }));
                }
                let target = (tag - farm.base_tag - 1) as usize;
                if target == rs.widx {
                    if payload.is_end() {
                        rs.own_end = true;
                        self.phase = Phase::Ring(rs);
                        return Ok(None);
                    }
                    let args = [payload];
                    let outputs = self.shared.registry.call(&farm.compute, &args)?;
                    let r = outputs
                        .into_iter()
                        .next()
                        .ok_or_else(|| ExecError::BadShape {
                            node: rs.worker,
                            what: "compute function must return one value".into(),
                        })?;
                    let cost = self.cost_of(&farm.compute, &args, 0);
                    let label = farm.compute.clone();
                    rs.sub = RingSub::Computed(r);
                    self.phase = Phase::Ring(rs);
                    return Ok(Some(Action::Compute {
                        label,
                        cost_ns: cost,
                    }));
                }
                // An item or end marker addressed further down the chain.
                let downstream = *farm.worker_procs.get(rs.widx + 1).ok_or_else(|| {
                    ExecError::Internal(format!(
                        "ring relay at the end of the chain received a message for worker {target}"
                    ))
                })?;
                let bytes = payload.byte_size();
                self.phase = Phase::Ring(rs);
                Ok(Some(Action::Send {
                    to: downstream,
                    tag,
                    bytes,
                    payload,
                }))
            }
            RingSub::Computed(r) => {
                let payload = Value::tuple(vec![Value::Int(rs.widx as i64), r]);
                let bytes = payload.byte_size();
                let tag = farm.result_tag();
                self.phase = Phase::Ring(rs);
                Ok(Some(Action::Send {
                    to: upstream,
                    tag,
                    bytes,
                    payload,
                }))
            }
            RingSub::AckSent => {
                self.phase = Phase::Fetch;
                Ok(None)
            }
        }
    }

    fn try_next(&mut self, view: &ProcView<'_, Value>) -> Result<Action<Value>, ExecError> {
        loop {
            match std::mem::replace(&mut self.phase, Phase::Fetch) {
                Phase::Halted => {
                    self.phase = Phase::Halted;
                    return Ok(Action::Halt);
                }
                Phase::AfterRecv { edge } => {
                    let msg = view.last_message.ok_or_else(|| {
                        ExecError::Internal("recv completed without message".into())
                    })?;
                    self.env.insert(edge, msg.payload.clone());
                }
                Phase::AfterInputWait { node } => {
                    return self.exec_input(node, view.now_ns, 0);
                }
                Phase::Master(ms) => {
                    if let Some(a) = self.master_step(ms, view)? {
                        return Ok(a);
                    }
                }
                Phase::Worker(ws) => {
                    if let Some(a) = self.worker_step(ws, view)? {
                        return Ok(a);
                    }
                }
                Phase::Ring(rs) => {
                    if let Some(a) = self.ring_step(rs, view)? {
                        return Ok(a);
                    }
                }
                Phase::Fetch => {
                    let shared = Rc::clone(&self.shared);
                    let ops = &shared.programs[self.prog].ops;
                    if self.pc >= ops.len() {
                        self.commit_memory()?;
                        self.env.clear();
                        self.iter += 1;
                        self.pc = 0;
                        if self.iter >= self.shared.iterations || ops.is_empty() {
                            self.phase = Phase::Halted;
                            return Ok(Action::Halt);
                        }
                        continue;
                    }
                    // Interpret the op in place: the macro-code stays in
                    // the shared statics, nothing is cloned per fetch.
                    let op = &ops[self.pc];
                    self.pc += 1;
                    match *op {
                        MacroOp::Recv { edge, from, tag } => {
                            self.phase = Phase::AfterRecv { edge };
                            return Ok(Action::Recv {
                                from: Some(from),
                                tag: TagFilter::Exact(tag),
                            });
                        }
                        MacroOp::Send { edge, to, tag, .. } => {
                            let v = self
                                .env
                                .get(&edge)
                                .cloned()
                                .ok_or(ExecError::MissingValue { edge })?;
                            let bytes = v.byte_size();
                            return Ok(Action::Send {
                                to,
                                tag,
                                bytes,
                                payload: v,
                            });
                        }
                        MacroOp::Comp { node, cost_ns, .. } => {
                            if let Some(a) = self.exec_comp(node, cost_ns, view.now_ns)? {
                                return Ok(a);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Behavior<Value> for ProcBehavior {
    fn next(&mut self, view: ProcView<'_, Value>) -> Action<Value> {
        match self.try_next(&view) {
            Ok(a) => a,
            Err(e) => {
                let mut log = self.log.borrow_mut();
                if log.error.is_none() {
                    log.error = Some(e);
                }
                self.phase = Phase::Halted;
                Action::Halt
            }
        }
    }
}

/// Runs `iterations` of the scheduled process graph on the simulated
/// machine.
///
/// - `mem_init` supplies the initial state of every `MEM` node;
/// - `farm_init` supplies the initial accumulator of every farm instance
///   (keyed by skeleton instance id).
///
/// # Errors
///
/// Any [`ExecError`]; in particular [`ExecError::Sim`] wraps simulator
/// deadlocks and limit violations.
#[allow(clippy::too_many_arguments)]
pub fn run_simulated(
    net: &ProcessNetwork,
    schedule: &Schedule,
    programs: &[MacroProgram],
    topo: Topology,
    registry: Arc<Registry>,
    mem_init: &HashMap<NodeId, Value>,
    farm_init: &HashMap<usize, Value>,
    config: &ExecConfig,
) -> Result<ExecReport, ExecError> {
    let stat = Arc::new(SimStatics::analyze(
        net.clone(),
        schedule.clone(),
        programs.to_vec(),
        topo,
        registry,
        farm_init,
    )?);
    run_prepared(&stat, mem_init, config)
}

impl SimStatics {
    /// Derives the run-invariant executive context from a scheduled
    /// program: validates and indexes every farm instance, classifies
    /// farm-internal edges, and takes ownership of the network, schedule,
    /// macro-code, topology and registry. This is prepare-time work —
    /// a compiled executable calls it once and every run shares the
    /// result by `Arc`.
    ///
    /// # Errors
    ///
    /// Farm-shape violations ([`ExecError::MixedFarmPlacement`],
    /// [`ExecError::MissingFarmInit`]) and internal invariant breaches.
    pub fn analyze(
        net: ProcessNetwork,
        schedule: Schedule,
        programs: Vec<MacroProgram>,
        topo: Topology,
        registry: Arc<Registry>,
        farm_init: &HashMap<usize, Value>,
    ) -> Result<SimStatics, ExecError> {
        assert!(
            net.edges().len() < 1_000_000,
            "edge indices must stay below the farm tag space"
        );
        // Farm runtime info.
        let mut farms = HashMap::new();
        let mut farm_by_worker = HashMap::new();
        let mut farm_instances = HashSet::new();
        for node in net.nodes() {
            if let NodeKind::Master(acc) = &node.kind {
                let inst = node
                    .instance
                    .ok_or_else(|| ExecError::Internal("master without instance".into()))?;
                farm_instances.insert(inst);
                let worker_nodes: Vec<NodeId> = net
                    .nodes()
                    .iter()
                    .filter(|n| n.instance == Some(inst) && matches!(n.kind, NodeKind::Worker(_)))
                    .map(|n| n.id)
                    .collect();
                let compute = worker_nodes
                    .first()
                    .and_then(|&w| net.node(w).kind.function_name())
                    .ok_or_else(|| ExecError::Internal("farm without workers".into()))?
                    .to_string();
                let master_proc = schedule.proc_of(node.id);
                let all_procs: Vec<ProcId> =
                    worker_nodes.iter().map(|&w| schedule.proc_of(w)).collect();
                let any_remote = all_procs.iter().any(|&p| p != master_proc);
                let any_colocated = all_procs.contains(&master_proc);
                if any_remote && any_colocated {
                    return Err(ExecError::MixedFarmPlacement { master: node.id });
                }
                let local = !any_remote;
                // One logical worker per processor: the first worker node on a
                // processor is active; any surplus is inactive.
                let mut worker_procs: Vec<ProcId> = Vec::new();
                let mut assignment: Vec<Option<usize>> = Vec::with_capacity(worker_nodes.len());
                for &p in &all_procs {
                    if local || worker_procs.contains(&p) {
                        assignment.push(None);
                    } else {
                        worker_procs.push(p);
                        assignment.push(Some(worker_procs.len() - 1));
                    }
                }
                let init = farm_init
                    .get(&inst)
                    .cloned()
                    .ok_or(ExecError::MissingFarmInit { instance: inst })?;
                // Router nodes mark a Fig. 1 ring-shaped instance: the farm
                // protocol then relays messages along the worker chain.
                let ring = net.nodes().iter().any(|n| {
                    n.instance == Some(inst)
                        && matches!(n.kind, NodeKind::RouterMw | NodeKind::RouterWm)
                });
                if worker_procs.len() > 1022 {
                    return Err(ExecError::Internal(format!(
                        "farm instance {inst} spans {} processors, exceeding its 1024-tag window",
                        worker_procs.len()
                    )));
                }
                let farm = FarmRt {
                    compute,
                    acc: acc.clone(),
                    init,
                    master_proc,
                    worker_procs,
                    local,
                    ring,
                    base_tag: 1_000_000 + inst as u32 * 1024,
                };
                for (&w, &widx) in worker_nodes.iter().zip(&assignment) {
                    farm_by_worker.insert(w, (node.id, widx));
                }
                farms.insert(node.id, farm);
            }
        }
        let farm_internal_edges: HashSet<usize> = net
            .edges()
            .iter()
            .enumerate()
            .filter(
                |(_, e)| match (net.node(e.from).instance, net.node(e.to).instance) {
                    (Some(a), Some(b)) => a == b && farm_instances.contains(&a),
                    _ => false,
                },
            )
            .map(|(i, _)| i)
            .collect();
        Ok(SimStatics {
            net,
            schedule,
            programs,
            topo,
            registry,
            farms,
            farm_by_worker,
            farm_internal_edges,
        })
    }
}

/// Runs `config.iterations` of a prepared program ([`SimStatics`]) on the
/// simulated machine. The statics are shared by reference count; only
/// the per-run interpreter state (environments, MEM seeds, the simulator
/// itself) is allocated here — this is the zero-copy run-many half of
/// the prepare/run contract.
///
/// # Errors
///
/// Any [`ExecError`]; in particular [`ExecError::Sim`] wraps simulator
/// deadlocks and limit violations.
pub fn run_prepared(
    stat: &Arc<SimStatics>,
    mem_init: &HashMap<NodeId, Value>,
    config: &ExecConfig,
) -> Result<ExecReport, ExecError> {
    let shared = Rc::new(Shared {
        stat: Arc::clone(stat),
        clock: config.frame_clock,
        cost: config.sim.cost,
        iterations: config.iterations,
    });
    let log = Rc::new(RefCell::new(SharedLog::default()));
    let mut sim = Simulation::<Value>::new(stat.topo.clone(), config.sim);
    for (idx, prog) in stat.programs.iter().enumerate() {
        // Initial MEM states hosted on this processor.
        let mem: HashMap<NodeId, Value> = mem_init
            .iter()
            .filter(|(&n, _)| stat.schedule.proc_of(n) == prog.proc)
            .map(|(&n, v)| (n, v.clone()))
            .collect();
        sim.set_behavior(
            prog.proc,
            ProcBehavior {
                me: prog.proc,
                prog: idx,
                shared: Rc::clone(&shared),
                log: Rc::clone(&log),
                mem,
                env: HashMap::new(),
                iter: 0,
                pc: 0,
                phase: Phase::Fetch,
            },
        );
    }
    let sim_result = sim.run();
    let mut log = Rc::try_unwrap(log)
        .map_err(|_| ExecError::Internal("log still shared".into()))?
        .into_inner();
    if let Some(e) = log.error.take() {
        return Err(e);
    }
    let sim_report = sim_result.map_err(|e| ExecError::Sim(e.to_string()))?;
    // Per-iteration processing latency: output completion minus the time
    // the input was actually grabbed. (With a frame clock, grabs never run
    // ahead of frame arrival; when the pipeline lags, the grab happens late
    // and the latency measures processing, not queueing — the backlog shows
    // up as frame decimation instead, as on the real platform.)
    let mut latencies = Vec::new();
    for k in 0..config.iterations {
        let base = log
            .input_marks
            .iter()
            .filter(|(i, _)| *i == k)
            .map(|&(_, t)| t)
            .min();
        let out = log
            .output_marks
            .iter()
            .filter(|(i, _)| *i == k)
            .map(|&(_, t)| t)
            .max();
        if let (Some(b), Some(o)) = (base, out) {
            latencies.push(o.saturating_sub(b));
        }
    }
    Ok(ExecReport {
        sim: sim_report,
        latencies_ns: latencies,
    })
}
