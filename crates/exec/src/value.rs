//! Dynamic values flowing through the distributed executive.
//!
//! The executive ships *real application data* through the simulated
//! machine so that a parallel run can be checked bit-for-bit against the
//! sequential emulation. [`Value`] is the uniform message/argument type:
//! scalars, strings, lists, tuples, and opaque application payloads
//! (images, tracker states, …) carried behind an `Arc` together with their
//! modelled wire size.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// A dynamically-typed executive value.
#[derive(Clone)]
pub enum Value {
    /// The unit value.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Immutable string.
    Str(Arc<str>),
    /// Immutable byte buffer (raw frame pixels, encoded blobs). The
    /// storage is `Arc`-shared: cloning a `Bytes` value — fanning a frame
    /// out to N farm workers, queueing it on M streams — bumps a
    /// reference count instead of copying the payload.
    Bytes(Arc<[u8]>),
    /// Homogeneous-ish list.
    List(Arc<Vec<Value>>),
    /// Fixed-arity tuple.
    Tuple(Arc<Vec<Value>>),
    /// An opaque application value with an explicit wire-size estimate.
    Opaque {
        /// Human-readable type name for diagnostics.
        type_name: Arc<str>,
        /// The payload.
        data: Arc<dyn Any + Send + Sync>,
        /// Modelled size in bytes (drives link occupancy).
        bytes: u64,
    },
    /// Farm-protocol control marker: "no more work" (end of iteration).
    End,
}

impl Value {
    /// Wraps an application value as an opaque payload.
    pub fn opaque<T: Any + Send + Sync>(type_name: &str, value: T, bytes: u64) -> Value {
        Value::Opaque {
            type_name: Arc::from(type_name),
            data: Arc::new(value),
            bytes,
        }
    }

    /// Builds a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    /// Builds a tuple value.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Arc::new(items))
    }

    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Builds a byte-buffer value (the storage is shared from then on).
    pub fn bytes(b: impl Into<Arc<[u8]>>) -> Value {
        Value::Bytes(b.into())
    }

    /// Builds a byte-buffer value straight from a borrowed slice with a
    /// single copy into the shared `Arc` storage — unlike
    /// `Value::bytes(slice.to_vec())`, which copies into a `Vec` and then
    /// again into the `Arc`. This is the codec path for pixel buffers.
    pub fn bytes_from_slice(b: &[u8]) -> Value {
        Value::Bytes(Arc::from(b))
    }

    /// The byte payload, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Borrows the payload of an [`Value::Opaque`] as `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        match self {
            Value::Opaque { data, .. } => data.downcast_ref::<T>(),
            _ => None,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The list elements, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// The tuple elements, if this is a `Tuple`.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for the farm end marker.
    pub fn is_end(&self) -> bool {
        matches!(self, Value::End)
    }

    /// Modelled wire size in bytes. Every message is at least one byte.
    pub fn byte_size(&self) -> u64 {
        let raw = match self {
            Value::Unit | Value::Bool(_) | Value::End => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64,
            Value::Bytes(b) => b.len() as u64,
            Value::List(v) | Value::Tuple(v) => 8 + v.iter().map(Value::byte_size).sum::<u64>(),
            Value::Opaque { bytes, .. } => *bytes,
        };
        raw.max(1)
    }

    /// Structural size, the argument measure consumed by
    /// argument-dependent cost models (`skipper::CostModel`,
    /// [`crate::Registry::register_with_cost`]): scalars count 1, strings
    /// their length, lists and tuples the sum of their elements' sizes
    /// (so a list of `k` scalars has size `k`), opaque payloads their
    /// modelled byte size, and the farm end marker 0.
    pub fn size(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Float(_) => 1,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(v) | Value::Tuple(v) => v.iter().map(Value::size).sum(),
            Value::Opaque { bytes, .. } => *bytes as usize,
            Value::End => 0,
        }
    }

    /// A short type description for diagnostics.
    pub fn type_name(&self) -> String {
        match self {
            Value::Unit => "unit".into(),
            Value::Bool(_) => "bool".into(),
            Value::Int(_) => "int".into(),
            Value::Float(_) => "float".into(),
            Value::Str(_) => "string".into(),
            Value::Bytes(_) => "bytes".into(),
            Value::List(_) => "list".into(),
            Value::Tuple(_) => "tuple".into(),
            Value::Opaque { type_name, .. } => type_name.to_string(),
            Value::End => "end".into(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<bytes:{}B>", b.len()),
            Value::List(v) => f.debug_list().entries(v.iter()).finish(),
            Value::Tuple(v) => {
                write!(f, "(")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                write!(f, ")")
            }
            Value::Opaque {
                type_name, bytes, ..
            } => write!(f, "<{type_name}:{bytes}B>"),
            Value::End => write!(f, "<end>"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Unit, Value::Unit) | (Value::End, Value::End) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::List(a), Value::List(b)) | (Value::Tuple(a), Value::Tuple(b)) => a == b,
            (Value::Opaque { data: a, .. }, Value::Opaque { data: b, .. }) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// [`Value`]s cross the receipt hasher structurally: every data-bearing
/// variant maps onto its [`WireValue`](skipper::wire::WireValue)
/// counterpart, so a receipted compiled-DSL run hashes identically to a
/// handwritten program producing the same values. The two variants
/// without a structural encoding are tagged tuples: an `Opaque` hashes
/// its type name and byte size (its payload identity is host-local by
/// design), and `End` hashes its marker tag.
impl skipper::wire::ToWire for Value {
    fn to_wire(&self) -> skipper::wire::WireValue {
        use skipper::wire::WireValue as W;
        match self {
            Value::Unit => W::Unit,
            Value::Bool(b) => W::Bool(*b),
            Value::Int(i) => W::Int(*i),
            Value::Float(x) => W::Float(*x),
            Value::Str(s) => W::Str(s.to_string()),
            Value::Bytes(b) => W::Bytes(b.to_vec()),
            Value::List(v) => W::List(v.iter().map(|x| x.to_wire()).collect()),
            Value::Tuple(v) => W::Tuple(v.iter().map(|x| x.to_wire()).collect()),
            Value::Opaque {
                type_name, bytes, ..
            } => W::Tuple(vec![
                W::Str("<opaque>".into()),
                W::Str(type_name.to_string()),
                W::Int(*bytes as i64),
            ]),
            Value::End => W::Tuple(vec![W::Str("<end>".into())]),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Self {
        Value::Unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Unit.byte_size(), 1);
        assert_eq!(Value::Int(5).byte_size(), 8);
        assert_eq!(Value::str("abcd").byte_size(), 4);
        let l = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(l.byte_size(), 8 + 16);
        let o = Value::opaque("image", vec![0u8; 16], 65536);
        assert_eq!(o.byte_size(), 65536);
    }

    #[test]
    fn downcast_roundtrip() {
        let v = Value::opaque("vec", vec![1u8, 2, 3], 3);
        assert_eq!(v.downcast_ref::<Vec<u8>>().unwrap(), &vec![1, 2, 3]);
        assert!(v.downcast_ref::<String>().is_none());
        assert!(Value::Int(1).downcast_ref::<i64>().is_none());
    }

    #[test]
    fn equality_is_structural_for_plain_values() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Float(3.0));
        assert_eq!(
            Value::list(vec![Value::Bool(true)]),
            Value::list(vec![Value::Bool(true)])
        );
    }

    #[test]
    fn opaque_equality_is_identity() {
        let a = Value::opaque("x", 1u8, 1);
        let b = a.clone();
        assert_eq!(a, b);
        let c = Value::opaque("x", 1u8, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert!(Value::End.is_end());
        let t = Value::tuple(vec![Value::Int(1), Value::Unit]);
        assert_eq!(t.as_tuple().unwrap().len(), 2);
        assert!(t.as_list().is_none());
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let v = Value::bytes(vec![1u8, 2, 3]);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(v.as_bytes(), Some(&[1u8, 2, 3][..]));
        assert_eq!(v.byte_size(), 3);
        assert_eq!(v.size(), 3);
        assert_eq!(v.type_name(), "bytes");
        let (Value::Bytes(a), Value::Bytes(b)) = (&v, &w) else {
            panic!("bytes variant");
        };
        assert!(Arc::ptr_eq(a, b), "clone must share, not copy");
        assert_eq!(format!("{v:?}"), "<bytes:3B>");
    }

    #[test]
    fn debug_formats_compactly() {
        let v = Value::tuple(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(format!("{v:?}"), "(1, \"a\")");
        let o = Value::opaque("image", (), 1024);
        assert_eq!(format!("{o:?}"), "<image:1024B>");
    }
}
