//! The registry of user sequential functions.
//!
//! In SKiPPER, "each instance takes as parameters the application specific
//! sequential functions written in C". The executive binds process-graph
//! nodes to native Rust closures registered here by name, together with an
//! optional **cost function** mapping actual arguments to abstract work
//! units — the dynamic analogue of the WCET hints the mapper uses.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A registered sequential function: `arguments (one per input port) →
/// results (one per output port)`.
pub type NativeFn = Arc<dyn Fn(&[Value]) -> Vec<Value> + Send + Sync>;

/// A cost model for one function: actual arguments → abstract work units.
pub type CostFn = Arc<dyn Fn(&[Value]) -> u64 + Send + Sync>;

/// Raised when the executive calls a function nobody registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFunction(pub String);

impl fmt::Display for UnknownFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown function `{}`", self.0)
    }
}

impl std::error::Error for UnknownFunction {}

/// Name → native function/cost bindings.
///
/// # Example
///
/// ```
/// use skipper_exec::{Registry, Value};
/// let mut reg = Registry::new();
/// reg.register("double", |args| vec![Value::Int(args[0].as_int().unwrap() * 2)]);
/// let out = reg.call("double", &[Value::Int(21)]).unwrap();
/// assert_eq!(out, vec![Value::Int(42)]);
/// ```
#[derive(Default)]
pub struct Registry {
    fns: HashMap<String, NativeFn>,
    costs: HashMap<String, CostFn>,
}

/// Counts every [`Registry`] clone this process has performed — the
/// zero-copy hot path's observable. A prepared executable binds its
/// endpoint functions once, at compile time, against rebindable slots,
/// so [`crate::backend::Executable::run`] performs **zero** registry
/// clones per frame; the probe tests snapshot this counter around a
/// prepare + N runs sequence and assert the per-run delta is zero.
static REGISTRY_CLONES: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Total number of [`Registry`] clones performed by this process so far —
/// a monotonic probe for asserting the zero-copy run contract (compare
/// deltas around a prepare + N runs sequence).
pub fn registry_clone_count() -> usize {
    REGISTRY_CLONES.load(std::sync::atomic::Ordering::Relaxed)
}

impl Clone for Registry {
    fn clone(&self) -> Self {
        REGISTRY_CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Registry {
            fns: self.fns.clone(),
            costs: self.costs.clone(),
        }
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers `f` under `name` (replacing any previous binding).
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
    ) -> &mut Self {
        self.fns.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Registers `f` with an explicit cost function.
    pub fn register_with_cost(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Vec<Value> + Send + Sync + 'static,
        cost: impl Fn(&[Value]) -> u64 + Send + Sync + 'static,
    ) -> &mut Self {
        self.fns.insert(name.to_string(), Arc::new(f));
        self.costs.insert(name.to_string(), Arc::new(cost));
        self
    }

    /// `true` when `name` is bound.
    pub fn has(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }

    /// Calls the function bound to `name`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownFunction`] when nothing is bound to `name`.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Vec<Value>, UnknownFunction> {
        match self.fns.get(name) {
            Some(f) => Ok(f(args)),
            None => Err(UnknownFunction(name.to_string())),
        }
    }

    /// The work-unit cost of calling `name` on `args`; `None` when no cost
    /// function is registered.
    pub fn cost_units(&self, name: &str, args: &[Value]) -> Option<u64> {
        self.costs.get(name).map(|c| c(args))
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<_> = self.fns.keys().collect();
        names.sort();
        f.debug_struct("Registry")
            .field("functions", &names)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_unknown_fails() {
        let reg = Registry::new();
        assert_eq!(
            reg.call("nope", &[]).unwrap_err(),
            UnknownFunction("nope".into())
        );
    }

    #[test]
    fn register_and_call() {
        let mut reg = Registry::new();
        reg.register("id", |args| args.to_vec());
        assert!(reg.has("id"));
        let out = reg.call("id", &[Value::Int(1), Value::Unit]).unwrap();
        assert_eq!(out, vec![Value::Int(1), Value::Unit]);
    }

    #[test]
    fn cost_function_consulted() {
        let mut reg = Registry::new();
        reg.register_with_cost(
            "work",
            |_| vec![Value::Unit],
            |args| args.len() as u64 * 100,
        );
        assert_eq!(reg.cost_units("work", &[Value::Unit]), Some(100));
        assert_eq!(reg.cost_units("work", &[]), Some(0));
        reg.register("free", |_| vec![Value::Unit]);
        assert_eq!(reg.cost_units("free", &[]), None);
    }

    #[test]
    fn rebinding_replaces() {
        let mut reg = Registry::new();
        reg.register("f", |_| vec![Value::Int(1)]);
        reg.register("f", |_| vec![Value::Int(2)]);
        assert_eq!(reg.call("f", &[]).unwrap(), vec![Value::Int(2)]);
    }

    #[test]
    fn debug_lists_names() {
        let mut reg = Registry::new();
        reg.register("b", |_| vec![]).register("a", |_| vec![]);
        let s = format!("{reg:?}");
        assert!(s.contains("\"a\"") && s.contains("\"b\""));
    }
}
