//! Encoding native program data as executive [`Value`]s.
//!
//! The simulator backend ships *real application data* through the
//! modelled machine; [`SimValue`] is the bridge between a skeleton
//! program's native Rust types and the dynamic [`Value`] messages the
//! executive routes. Round-tripping must be lossless — the backend
//! equivalence tests compare simulated results bit-for-bit against the
//! sequential emulation.

use crate::value::Value;

/// A type that can cross the simulated machine as a [`Value`].
///
/// Implementations must round-trip: `T::from_value(&t.to_value())`
/// yields `Some` of an equal value. (`'static` because decoded values are
/// materialised inside the executive's registered functions.)
pub trait SimValue: Sized + 'static {
    /// Encodes `self` as an executive value.
    fn to_value(&self) -> Value;

    /// Decodes an executive value; `None` on shape mismatch.
    fn from_value(v: &Value) -> Option<Self>;
}

impl SimValue for () {
    fn to_value(&self) -> Value {
        Value::Unit
    }

    fn from_value(v: &Value) -> Option<Self> {
        matches!(v, Value::Unit).then_some(())
    }
}

impl SimValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl SimValue for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_float()
    }
}

impl SimValue for String {
    fn to_value(&self) -> Value {
        Value::str(self)
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Str(s) => Some(s.to_string()),
            _ => None,
        }
    }
}

macro_rules! impl_int_simvalue {
    ($($t:ty),*) => {$(
        impl SimValue for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }

            fn from_value(v: &Value) -> Option<Self> {
                v.as_int().and_then(|i| <$t>::try_from(i).ok())
            }
        }
    )*};
}

// `u64`/`usize` ride the `i64` wire format, so values above `i64::MAX`
// do not round-trip; the executive's messages are modelled data, not a
// serialisation format.
impl_int_simvalue!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// The zero-copy frame bridge: an `Arc<[u8]>` payload crosses the
// simulated machine as [`Value::Bytes`] sharing the same allocation, so
// encoding a frame, fanning it out to farm workers and decoding it back
// never copies the pixels. (`Vec<u8>` intentionally keeps the element-wise
// list encoding of the blanket `Vec<T>` impl below — use `Arc<[u8]>` for
// bulk payloads.)
impl SimValue for std::sync::Arc<[u8]> {
    fn to_value(&self) -> Value {
        Value::Bytes(std::sync::Arc::clone(self))
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v {
            Value::Bytes(b) => Some(std::sync::Arc::clone(b)),
            _ => None,
        }
    }
}

// The identity bridge: a program that already computes in executive
// [`Value`]s (the DSL compiler's `CompiledBody` carries every frame,
// state and output as a `Value`) crosses the simulated machine as
// itself. Cloning a `Value` is cheap — every bulk payload variant is
// `Arc`-shared.
impl SimValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn from_value(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

impl<T: SimValue> SimValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::list(self.iter().map(SimValue::to_value).collect())
    }

    fn from_value(v: &Value) -> Option<Self> {
        v.as_list()?.iter().map(T::from_value).collect()
    }
}

impl<T: SimValue> SimValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            // Encoded as 0/1-element lists so `None` stays distinguishable
            // from a unit payload.
            Some(t) => Value::list(vec![t.to_value()]),
            None => Value::list(Vec::new()),
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.as_list()? {
            [] => Some(None),
            [x] => T::from_value(x).map(Some),
            _ => None,
        }
    }
}

impl<A: SimValue, B: SimValue> SimValue for (A, B) {
    fn to_value(&self) -> Value {
        Value::tuple(vec![self.0.to_value(), self.1.to_value()])
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.as_tuple()? {
            [a, b] => Some((A::from_value(a)?, B::from_value(b)?)),
            _ => None,
        }
    }
}

impl<A: SimValue, B: SimValue, C: SimValue, D: SimValue> SimValue for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::tuple(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.as_tuple()? {
            [a, b, c, d] => Some((
                A::from_value(a)?,
                B::from_value(b)?,
                C::from_value(c)?,
                D::from_value(d)?,
            )),
            _ => None,
        }
    }
}

impl<A: SimValue, B: SimValue, C: SimValue> SimValue for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::tuple(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }

    fn from_value(v: &Value) -> Option<Self> {
        match v.as_tuple()? {
            [a, b, c] => Some((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: SimValue + PartialEq + std::fmt::Debug>(t: T) {
        assert_eq!(T::from_value(&t.to_value()), Some(t));
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(());
        roundtrip(true);
        roundtrip(-42i64);
        roundtrip(42u32);
        roundtrip(7usize);
        roundtrip(1.5f64);
        roundtrip("farm".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<i32>::new());
        roundtrip((3i64, vec![1u32, 2]));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1usize, 2usize, 3usize, 4usize));
        roundtrip(Some(9i64));
        roundtrip(None::<i64>);
        roundtrip(vec![Some(1i32), None]);
    }

    #[test]
    fn arc_bytes_roundtrip_is_zero_copy() {
        let frame: std::sync::Arc<[u8]> = vec![9u8; 64].into();
        let v = frame.to_value();
        let back = <std::sync::Arc<[u8]>>::from_value(&v).expect("bytes decode");
        assert!(
            std::sync::Arc::ptr_eq(&frame, &back),
            "encode/decode must share the allocation"
        );
    }

    #[test]
    fn mismatched_shapes_decode_to_none() {
        assert_eq!(i64::from_value(&Value::Unit), None);
        assert_eq!(<(i64, i64)>::from_value(&Value::Int(3)), None);
        assert_eq!(Vec::<i64>::from_value(&Value::Float(0.0)), None);
        assert_eq!(u8::from_value(&Value::Int(1000)), None);
    }
}
