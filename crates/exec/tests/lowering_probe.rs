//! The prepare-once/run-many acceptance probe: preparing a program and
//! running it many times must perform lowering (and hence scheduling —
//! the schedule is derived inside the same compilation) **exactly
//! once**, while fresh `Backend::run` calls pay one lowering each.
//!
//! This is the only test in this binary on purpose: the probe is a
//! process-global counter, so sibling tests lowering concurrently would
//! make deltas meaningless.

use skipper::{df, itermem, Backend, Executable, SeqBackend};
use skipper_exec::{lowering_count, SimBackend};

#[test]
fn prepare_once_lowers_once_fresh_runs_lower_each_time() {
    let farm = df(3, |x: &i64| x * x + 1, |z: i64, y| z + y, 2i64);
    let backend = SimBackend::ring(4);
    let xs: Vec<i64> = (0..12).collect();
    let golden = SeqBackend.run(&farm, &xs[..]);

    // Prepared path: one lowering, N simulations.
    let before = lowering_count();
    let exec = Backend::<_, &[i64]>::prepare(&backend, &farm);
    for _ in 0..5 {
        assert_eq!(exec.run(&xs[..]).expect("prepared farm runs"), golden);
    }
    assert_eq!(
        lowering_count() - before,
        1,
        "prepare + 5 runs must lower exactly once"
    );

    // Fresh-run path: every run re-lowers (the cost the prepared path
    // amortises away).
    let before = lowering_count();
    for _ in 0..3 {
        assert_eq!(backend.run(&farm, &xs[..]).expect("farm runs"), golden);
    }
    assert_eq!(lowering_count() - before, 3, "3 fresh runs pay 3 lowerings");

    // Stream loops follow the same contract.
    let prog = itermem(df(2, |x: &i64| x + 3, |z: i64, y| z + y, 0i64), 7i64);
    let frames: Vec<Vec<i64>> = vec![vec![1, 2], vec![3], Vec::new()];
    let loop_golden = SeqBackend.run(&prog, frames.clone());
    let before = lowering_count();
    let exec = Backend::<_, Vec<Vec<i64>>>::prepare(&backend, &prog);
    for _ in 0..4 {
        assert_eq!(
            exec.run(frames.clone()).expect("prepared loop runs"),
            loop_golden
        );
    }
    assert_eq!(
        lowering_count() - before,
        1,
        "a prepared stream loop lowers its body exactly once"
    );
}
