//! The zero-copy run acceptance probe: a prepared executable binds its
//! endpoint functions once, at compile time, against rebindable slots —
//! so running it N times must perform **zero** registry clones, for the
//! one-shot and the stream-loop paths alike. The companion aliasing
//! tests pin that the rebindable slots do not leak state between runs
//! or between executables.
//!
//! The clone probe is a process-global counter, so the counting test is
//! the only `#[test]` in this binary that takes deltas around runs;
//! the aliasing tests only assert on values, never on the counter.

use skipper::{df, itermem, Backend, Executable, SeqBackend};
use skipper_exec::{registry_clone_count, SimBackend};

#[test]
fn prepared_runs_never_clone_the_registry() {
    let farm = df(3, |x: &i64| x * x + 1, |z: i64, y| z + y, 2i64);
    let backend = SimBackend::ring(4);
    let xs: Vec<i64> = (0..12).collect();
    let golden = SeqBackend.run(&farm, &xs[..]);

    // One-shot path: however many clones preparation itself costs must
    // be constant (frame-count independent), and each run must cost
    // exactly zero.
    let before = registry_clone_count();
    let exec = Backend::<_, &[i64]>::prepare(&backend, &farm);
    let after_prepare = registry_clone_count();
    for _ in 0..5 {
        assert_eq!(exec.run(&xs[..]).expect("prepared farm runs"), golden);
    }
    assert_eq!(
        registry_clone_count(),
        after_prepare,
        "prepared one-shot runs must not clone the registry"
    );
    assert_eq!(
        after_prepare, before,
        "one-shot preparation binds endpoints in place, without cloning"
    );

    // Stream-loop path: same contract, asserted across two runs of
    // different lengths so per-frame clones cannot hide in a constant.
    let prog = itermem(df(2, |x: &i64| x + 3, |z: i64, y| z + y, 0i64), 7i64);
    let exec = Backend::<_, Vec<Vec<i64>>>::prepare(&backend, &prog);
    let after_prepare = registry_clone_count();
    let short: Vec<Vec<i64>> = vec![vec![1, 2]];
    let long: Vec<Vec<i64>> = vec![vec![1, 2], vec![3], Vec::new(), vec![4, 5, 6]];
    assert_eq!(
        exec.run(short.clone()).expect("short stream"),
        SeqBackend.run(&prog, short)
    );
    assert_eq!(
        exec.run(long.clone()).expect("long stream"),
        SeqBackend.run(&prog, long)
    );
    assert_eq!(
        registry_clone_count(),
        after_prepare,
        "prepared stream-loop runs must not clone the registry, regardless of frame count"
    );
}

/// Two runs through ONE executable: the second run's MEM seed and frame
/// slots must not observe the first run's state (the rebindable slots
/// are cleared/rebound per run).
#[test]
fn reruns_through_one_executable_do_not_alias_mem_slots() {
    let backend = SimBackend::ring(3);
    let prog = itermem(df(2, |x: &i64| x * 2, |z: i64, y| z + y, 0i64), 100i64);
    let exec = Backend::<_, Vec<Vec<i64>>>::prepare(&backend, &prog);
    let a: Vec<Vec<i64>> = vec![vec![1], vec![2, 3]];
    let b: Vec<Vec<i64>> = vec![vec![10]];

    let golden_a = SeqBackend.run(&prog, a.clone());
    let golden_b = SeqBackend.run(&prog, b.clone());
    // Interleave: a, b, a again — if any slot (frames, state, outputs,
    // MEM) leaked across runs, the repeats would diverge.
    assert_eq!(exec.run(a.clone()).expect("run a"), golden_a);
    assert_eq!(exec.run(b.clone()).expect("run b"), golden_b);
    assert_eq!(exec.run(a.clone()).expect("run a again"), golden_a);
    assert_eq!(exec.run(b).expect("run b again"), golden_b);
}

/// Two executables prepared from the same backend: their slots are
/// per-executable, so interleaved runs stay isolated.
#[test]
fn two_executables_keep_their_slots_isolated() {
    let backend = SimBackend::ring(3);
    let double = itermem(df(2, |x: &i64| x * 2, |z: i64, y| z + y, 0i64), 0i64);
    let square = itermem(df(2, |x: &i64| x * x, |z: i64, y| z + y, 0i64), 5i64);
    let exec_d = Backend::<_, Vec<Vec<i64>>>::prepare(&backend, &double);
    let exec_s = Backend::<_, Vec<Vec<i64>>>::prepare(&backend, &square);
    let frames: Vec<Vec<i64>> = vec![vec![1, 2, 3], vec![4]];
    let golden_d = SeqBackend.run(&double, frames.clone());
    let golden_s = SeqBackend.run(&square, frames.clone());
    for _ in 0..3 {
        assert_eq!(exec_d.run(frames.clone()).expect("double"), golden_d);
        assert_eq!(exec_s.run(frames.clone()).expect("square"), golden_s);
    }
}
