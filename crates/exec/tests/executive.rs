//! End-to-end tests of the distributed executive: process graph →
//! schedule → macro-code → simulated execution with real values.

use skipper_exec::{run_simulated, ExecConfig, ExecError, Registry, Value};
use skipper_net::dtype::DataType;
use skipper_net::graph::{NodeId, NodeKind, ProcessNetwork};
use skipper_net::pnt::{expand_df, expand_itermem, DfTypes, FarmShape, IterMemTypes};
use skipper_syndex::analysis::check_deadlock_free;
use skipper_syndex::macrocode::generate;
use skipper_syndex::schedule::{schedule_with, Strategy};
use skipper_syndex::Architecture;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use transvision::stream::FrameClock;
use transvision::topology::ProcId;
use transvision::Topology;

type Collector = Arc<Mutex<Vec<i64>>>;

/// in -> double -> out, executed on a 2-processor ring.
#[test]
fn linear_pipeline_computes_and_measures_latency() {
    let mut net = ProcessNetwork::new("pipe");
    let inp = net.add_node(NodeKind::Input("source".into()), "source");
    let f = net.add_node(NodeKind::UserFn("double".into()), "double");
    let out = net.add_node(NodeKind::Output("sink".into()), "sink");
    net.add_data_edge(inp, 0, f, 0, DataType::Int).unwrap();
    net.add_data_edge(f, 0, out, 0, DataType::Int).unwrap();
    net.set_cost_hint(f, 1000);

    let arch = Architecture::ring_t9000(2);
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::RoundRobin).unwrap();
    let progs = generate(&net, &sched, &arch);
    check_deadlock_free(&progs, 3).unwrap();

    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let sink = outputs.clone();
    let mut reg = Registry::new();
    reg.register("source", |args| {
        vec![Value::Int(args[0].as_int().unwrap() + 10)]
    });
    reg.register("double", |args| {
        vec![Value::Int(args[0].as_int().unwrap() * 2)]
    });
    reg.register("sink", move |args| {
        sink.lock().unwrap().push(args[0].as_int().unwrap());
        vec![]
    });

    let config = ExecConfig {
        iterations: 3,
        ..ExecConfig::default()
    };
    let report = run_simulated(
        &net,
        &sched,
        &progs,
        arch.topology().clone(),
        Arc::new(reg),
        &HashMap::new(),
        &HashMap::new(),
        &config,
    )
    .unwrap();
    // Iteration k: source emits k+10, doubled.
    assert_eq!(*outputs.lock().unwrap(), vec![20, 22, 24]);
    assert_eq!(report.latencies_ns.len(), 3);
    assert!(report.mean_latency_ns() > 0);
    assert!(report.sim.delivered > 0, "values crossed processors");
}

/// itermem: a counter threaded through MEM across iterations, with the MEM
/// node and loop body forced onto different processors.
#[test]
fn itermem_state_threads_across_processors() {
    let mut net = ProcessNetwork::new("loop");
    let body = net.add_node(NodeKind::UserFn("step".into()), "step");
    net.set_cost_hint(body, 1000);
    let h = expand_itermem(
        &mut net,
        "grab",
        "show",
        body,
        body,
        IterMemTypes {
            input: DataType::Int,
            state: DataType::Int,
            output: DataType::Int,
        },
    )
    .unwrap();

    let arch = Architecture::ring_t9000(2);
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::RoundRobin).unwrap();
    let progs = generate(&net, &sched, &arch);
    check_deadlock_free(&progs, 4).unwrap();

    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let sink = outputs.clone();
    let mut reg = Registry::new();
    reg.register("grab", |args| vec![Value::Int(args[0].as_int().unwrap())]);
    // step (x, z) -> (y, z') with y = z, z' = z + x  (Fig. 4 port contract:
    // port0 = per-iteration output, port1 = next state).
    reg.register("step", |args| {
        let x = args[0].as_int().unwrap();
        let z = args[1].as_int().unwrap();
        vec![Value::Int(z), Value::Int(z + x)]
    });
    reg.register("show", move |args| {
        sink.lock().unwrap().push(args[0].as_int().unwrap());
        vec![]
    });

    let mut mem_init = HashMap::new();
    mem_init.insert(h.mem, Value::Int(100));
    let config = ExecConfig {
        iterations: 4,
        ..ExecConfig::default()
    };
    run_simulated(
        &net,
        &sched,
        &progs,
        arch.topology().clone(),
        Arc::new(reg),
        &mem_init,
        &HashMap::new(),
        &config,
    )
    .unwrap();
    // z: 100, 100+0, 100+0+1, 100+0+1+2; y = z before update.
    assert_eq!(*outputs.lock().unwrap(), vec![100, 100, 101, 103]);
}

/// Builds a df-farm network: in -> master(+workers) -> out.
fn farm_net(
    workers: usize,
) -> (
    ProcessNetwork,
    NodeId,
    NodeId,
    skipper_net::pnt::FarmHandles,
) {
    let mut net = ProcessNetwork::new("farm");
    let inp = net.add_node(NodeKind::Input("items".into()), "items");
    let h = expand_df(
        &mut net,
        workers,
        "square",
        "add",
        DfTypes {
            item: DataType::Int,
            result: DataType::Int,
            acc: DataType::Int,
        },
        FarmShape::Star,
    );
    let out = net.add_node(NodeKind::Output("sink".into()), "sink");
    net.add_data_edge(inp, 0, h.master, 0, DataType::list(DataType::Int))
        .unwrap();
    net.add_data_edge(h.master, 0, out, 0, DataType::Int)
        .unwrap();
    (net, inp, out, h)
}

fn farm_registry(outputs: &Collector) -> Registry {
    let sink = outputs.clone();
    let mut reg = Registry::new();
    reg.register("items", |args| {
        let k = args[0].as_int().unwrap();
        // Iteration k processes the list [1..=4+k].
        let items: Vec<Value> = (1..=4 + k).map(Value::Int).collect();
        vec![Value::list(items)]
    });
    reg.register_with_cost(
        "square",
        |args| vec![Value::Int(args[0].as_int().unwrap().pow(2))],
        |args| 1000 * args[0].as_int().unwrap_or(1) as u64,
    );
    reg.register("add", |args| {
        vec![Value::Int(
            args[0].as_int().unwrap() + args[1].as_int().unwrap(),
        )]
    });
    reg.register("sink", move |args| {
        sink.lock().unwrap().push(args[0].as_int().unwrap());
        vec![]
    });
    reg
}

/// The dynamic farm on a 5-processor ring: master on P0, workers on P1-P4.
#[test]
fn df_farm_dynamic_dispatch_on_ring() {
    let (net, inp, out, h) = farm_net(4);
    let arch = Architecture::ring_t9000(5);
    let mut pins = HashMap::new();
    pins.insert(inp, ProcId(0));
    pins.insert(h.master, ProcId(0));
    pins.insert(out, ProcId(0));
    for (i, &w) in h.workers.iter().enumerate() {
        pins.insert(w, ProcId(1 + i));
    }
    let sched = schedule_with(&net, &arch, &pins, Strategy::MinFinish).unwrap();
    let progs = generate(&net, &sched, &arch);
    check_deadlock_free(&progs, 2).unwrap();

    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let reg = farm_registry(&outputs);
    let mut farm_init = HashMap::new();
    farm_init.insert(h.instance, Value::Int(0));
    let config = ExecConfig {
        iterations: 2,
        ..ExecConfig::default()
    };
    let report = run_simulated(
        &net,
        &sched,
        &progs,
        arch.topology().clone(),
        Arc::new(reg),
        &HashMap::new(),
        &farm_init,
        &config,
    )
    .unwrap();
    // Iter 0: sum of squares 1..4 = 30; iter 1: 1..5 = 55.
    assert_eq!(*outputs.lock().unwrap(), vec![30, 55]);
    // All four workers computed something (dynamic dispatch reached them).
    for p in 1..=4 {
        assert!(
            report.sim.proc_busy_ns[p] > 0,
            "worker processor P{p} never worked"
        );
    }
}

/// The same farm collapsed onto one processor (sequential baseline).
#[test]
fn df_farm_local_mode_single_proc() {
    let (net, _, _, h) = farm_net(3);
    let arch = Architecture::single_t9000();
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::SingleProc).unwrap();
    let progs = generate(&net, &sched, &arch);

    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let reg = farm_registry(&outputs);
    let mut farm_init = HashMap::new();
    farm_init.insert(h.instance, Value::Int(0));
    let config = ExecConfig {
        iterations: 2,
        ..ExecConfig::default()
    };
    let report = run_simulated(
        &net,
        &sched,
        &progs,
        arch.topology().clone(),
        Arc::new(reg),
        &HashMap::new(),
        &farm_init,
        &config,
    )
    .unwrap();
    assert_eq!(*outputs.lock().unwrap(), vec![30, 55]);
    assert_eq!(report.sim.delivered, 0, "local farm sends no messages");
}

/// Parallel farm result equals single-processor result (the paper's
/// emulation-equivalence claim, exercised through the executive).
#[test]
fn farm_results_identical_across_machine_sizes() {
    let mut results = Vec::new();
    for nprocs in [1usize, 3, 5] {
        let (net, inp, out, h) = farm_net(4);
        let (arch, pins) = if nprocs == 1 {
            (Architecture::single_t9000(), HashMap::new())
        } else {
            let arch = Architecture::ring_t9000(nprocs);
            let mut pins = HashMap::new();
            pins.insert(inp, ProcId(0));
            pins.insert(h.master, ProcId(0));
            pins.insert(out, ProcId(0));
            for (i, &w) in h.workers.iter().enumerate() {
                pins.insert(w, ProcId(1 + i % (nprocs - 1)));
            }
            (arch, pins)
        };
        let strategy = if nprocs == 1 {
            Strategy::SingleProc
        } else {
            Strategy::MinFinish
        };
        let sched = schedule_with(&net, &arch, &pins, strategy).unwrap();
        let progs = generate(&net, &sched, &arch);
        let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
        let reg = farm_registry(&outputs);
        let mut farm_init = HashMap::new();
        farm_init.insert(h.instance, Value::Int(0));
        let config = ExecConfig {
            iterations: 3,
            ..ExecConfig::default()
        };
        run_simulated(
            &net,
            &sched,
            &progs,
            arch.topology().clone(),
            Arc::new(reg),
            &HashMap::new(),
            &farm_init,
            &config,
        )
        .unwrap();
        results.push(outputs.lock().unwrap().clone());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}

/// A frame clock makes inputs wait for frame arrival.
#[test]
fn frame_clock_gates_input() {
    let mut net = ProcessNetwork::new("clocked");
    let inp = net.add_node(NodeKind::Input("source".into()), "source");
    let out = net.add_node(NodeKind::Output("sink".into()), "sink");
    net.add_data_edge(inp, 0, out, 0, DataType::Int).unwrap();

    let arch = Architecture::single_t9000();
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::SingleProc).unwrap();
    let progs = generate(&net, &sched, &arch);

    let mut reg = Registry::new();
    reg.register("source", |args| vec![args[0].clone()]);
    reg.register("sink", |_| vec![]);
    let config = ExecConfig {
        iterations: 3,
        frame_clock: Some(FrameClock::hz(25.0)),
        ..ExecConfig::default()
    };
    let report = run_simulated(
        &net,
        &sched,
        &progs,
        Topology::single(),
        Arc::new(reg),
        &HashMap::new(),
        &HashMap::new(),
        &config,
    )
    .unwrap();
    // The run spans at least two full frame periods (frames at 0, 40, 80ms).
    assert!(report.sim.end_ns >= 80_000_000);
    // Latency per frame is tiny (work is trivial).
    assert!(report.mean_latency_ns() < 1_000_000);
}

#[test]
fn unknown_function_is_reported() {
    let mut net = ProcessNetwork::new("bad");
    let inp = net.add_node(NodeKind::Input("nope".into()), "nope");
    let out = net.add_node(NodeKind::Output("sink".into()), "sink");
    net.add_data_edge(inp, 0, out, 0, DataType::Int).unwrap();
    let arch = Architecture::single_t9000();
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::SingleProc).unwrap();
    let progs = generate(&net, &sched, &arch);
    let err = run_simulated(
        &net,
        &sched,
        &progs,
        Topology::single(),
        Arc::new(Registry::new()),
        &HashMap::new(),
        &HashMap::new(),
        &ExecConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::UnknownFunction(n) if n == "nope"));
}

#[test]
fn missing_farm_init_is_reported() {
    let (net, _, _, _) = farm_net(2);
    let arch = Architecture::single_t9000();
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::SingleProc).unwrap();
    let progs = generate(&net, &sched, &arch);
    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let reg = farm_registry(&outputs);
    let err = run_simulated(
        &net,
        &sched,
        &progs,
        Topology::single(),
        Arc::new(reg),
        &HashMap::new(),
        &HashMap::new(), // no farm init
        &ExecConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ExecError::MissingFarmInit { .. }));
}

/// Builds a Fig. 1 ring-shaped farm network wired to stream I/O.
fn ring_farm_net(
    workers: usize,
) -> (
    ProcessNetwork,
    NodeId,
    NodeId,
    skipper_net::pnt::FarmHandles,
) {
    let mut net = ProcessNetwork::new("ringfarm");
    let inp = net.add_node(NodeKind::Input("items".into()), "items");
    let h = expand_df(
        &mut net,
        workers,
        "square",
        "add",
        DfTypes {
            item: DataType::Int,
            result: DataType::Int,
            acc: DataType::Int,
        },
        FarmShape::Ring,
    );
    let out = net.add_node(NodeKind::Output("sink".into()), "sink");
    net.add_data_edge(inp, 0, h.master, 0, DataType::list(DataType::Int))
        .unwrap();
    net.add_data_edge(h.master, 0, out, 0, DataType::Int)
        .unwrap();
    (net, inp, out, h)
}

/// The Fig. 1 ring-shaped farm PNT executes: items are relayed down the
/// worker chain by the workers themselves, results climb back up, and the
/// results equal the star-shaped farm's.
#[test]
fn ring_farm_pnt_executes_via_chain_relay() {
    let (net, inp, out, h) = ring_farm_net(3);
    let arch = Architecture::ring_t9000(4);
    let mut pins = HashMap::new();
    pins.insert(inp, ProcId(0));
    pins.insert(h.master, ProcId(0));
    pins.insert(out, ProcId(0));
    for (i, &w) in h.workers.iter().enumerate() {
        pins.insert(w, ProcId(1 + i));
        // Fig. 1: one M->W / W->M router pair per worker processor.
        pins.insert(h.routers_mw[i], ProcId(1 + i));
        pins.insert(h.routers_wm[i], ProcId(1 + i));
    }
    let sched = schedule_with(&net, &arch, &pins, Strategy::MinFinish).unwrap();
    let progs = generate(&net, &sched, &arch);
    check_deadlock_free(&progs, 2).unwrap();

    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let reg = farm_registry(&outputs);
    let mut farm_init = HashMap::new();
    farm_init.insert(h.instance, Value::Int(0));
    let config = ExecConfig {
        iterations: 2,
        ..ExecConfig::default()
    };
    let report = run_simulated(
        &net,
        &sched,
        &progs,
        arch.topology().clone(),
        Arc::new(reg),
        &HashMap::new(),
        &farm_init,
        &config,
    )
    .unwrap();
    // Iter 0: sum of squares 1..4 = 30; iter 1: 1..5 = 55.
    assert_eq!(*outputs.lock().unwrap(), vec![30, 55]);
    // Every chain processor worked, and relaying produced strictly more
    // end-to-end deliveries than the item+result count alone.
    for p in 1..=3 {
        assert!(
            report.sim.proc_busy_ns[p] > 0,
            "chain processor P{p} never worked"
        );
    }
    let items = 4 + 5;
    assert!(
        report.sim.delivered > 2 * items,
        "chain relaying must multiply message deliveries: {}",
        report.sim.delivered
    );
}

/// A ring-shaped farm collapsed onto one processor degrades to the local
/// (inline) farm mode, routers included.
#[test]
fn ring_farm_pnt_runs_locally_on_single_proc() {
    let (net, _, _, h) = ring_farm_net(2);
    let arch = Architecture::single_t9000();
    let sched = schedule_with(&net, &arch, &HashMap::new(), Strategy::SingleProc).unwrap();
    let progs = generate(&net, &sched, &arch);
    let outputs: Collector = Arc::new(Mutex::new(Vec::new()));
    let reg = farm_registry(&outputs);
    let mut farm_init = HashMap::new();
    farm_init.insert(h.instance, Value::Int(0));
    run_simulated(
        &net,
        &sched,
        &progs,
        Topology::single(),
        Arc::new(reg),
        &HashMap::new(),
        &farm_init,
        &ExecConfig::default(),
    )
    .unwrap();
    assert_eq!(*outputs.lock().unwrap(), vec![30]);
}
