//! Connected-component labelling with the scm skeleton (paper ref [7]).
//!
//! ```text
//! cargo run --release --example ccl_farm            # thread backend
//! cargo run --release --example ccl_farm -- pool    # persistent pool
//! cargo run --release --example ccl_farm -- seq     # declarative spec
//! ```
//!
//! The optional argument picks the host execution strategy
//! ([`skipper::HostBackend`]); the pool is worth trying here — labelling
//! many frames reuses its threads instead of spawning per call.

use skipper::HostBackend;
use skipper_apps::ccl::{count_components_on, count_components_seq};
use skipper_vision::synth::random_blobs;
use std::time::Instant;

fn main() {
    let backend: HostBackend = std::env::args()
        .nth(1)
        .as_deref()
        .unwrap_or("thread")
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let img = random_blobs(512, 512, 80, 42);
    let reference = count_components_seq(&img);
    println!("512x512 random blob field, {reference} components");
    println!("backend: {}\n", backend.name());
    println!("bands   components   wall-time (ms)");
    for n in [1, 2, 4, 8, 16] {
        let t0 = Instant::now();
        let count = count_components_on(&backend, &img, n);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{n:>5}   {count:>10}   {ms:>13.2}");
        assert_eq!(count, reference, "parallel labelling must agree");
    }
}
