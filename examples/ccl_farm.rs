//! Connected-component labelling with the scm skeleton (paper ref [7]).
//!
//! ```text
//! cargo run --release --example ccl_farm
//! ```

use skipper_apps::ccl::{count_components_scm, count_components_seq};
use skipper_vision::synth::random_blobs;
use std::time::Instant;

fn main() {
    let img = random_blobs(512, 512, 80, 42);
    let reference = count_components_seq(&img);
    println!("512x512 random blob field, {reference} components\n");
    println!("bands   components   wall-time (ms)");
    for n in [1, 2, 4, 8, 16] {
        let t0 = Instant::now();
        let count = count_components_scm(&img, n);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!("{n:>5}   {count:>10}   {ms:>13.2}");
        assert_eq!(count, reference, "parallel labelling must agree");
    }
}
