//! The full environment pipeline of Fig. 2: a Skipper-ML source program is
//! parsed, type-checked, expanded into a process network, scheduled onto a
//! ring, and emitted as per-processor m4 macro-code.
//!
//! ```text
//! cargo run --example ml_pipeline
//! ```

use skipper_lang::expand::expand_program;
use skipper_lang::parser::parse_program;
use skipper_lang::types::{check_program, TypeEnv};
use skipper_net::pnt::FarmShape;
use skipper_syndex::analysis::check_deadlock_free;
use skipper_syndex::macrocode::generate;
use skipper_syndex::schedule::{schedule_with, Strategy};
use skipper_syndex::Architecture;
use std::collections::HashMap;
use transvision::topology::ProcId;

const SOURCE: &str = r#"
    (* The paper's vehicle tracker, section 4. *)
    let nproc = 8;;
    let loop (state, im) =
      let ws = get_windows nproc state im in
      let marks = df nproc detect_mark accum_marks empty_list ws in
      predict state marks;;
    let main = itermem read_img loop display_marks s0 dims;;
"#;

fn main() {
    // 1. Declare the application's sequential C functions.
    let mut env = TypeEnv::with_skeletons();
    for (name, sig) in [
        ("read_img", "dims -> image"),
        ("get_windows", "int -> state -> image -> window list"),
        ("detect_mark", "window -> mark list"),
        ("accum_marks", "mark list -> mark list -> mark list"),
        ("empty_list", "mark list"),
        ("predict", "state -> mark list -> state * mark list"),
        ("display_marks", "mark list -> unit"),
        ("s0", "state"),
        ("dims", "dims"),
    ] {
        env.declare(name, sig).expect("signature parses");
    }

    // 2. Parse + polymorphic type check.
    let prog = parse_program(SOURCE).expect("parses");
    let types = check_program(&env, &prog).expect("type checks");
    println!("— type checking —");
    for (name, scheme) in &types.items {
        println!("val {name} : {}", scheme.ty);
    }

    // 3. Skeleton expansion into a process network.
    let ex = expand_program(&env, &prog, FarmShape::Star).expect("expands");
    println!(
        "\n— skeleton expansion — {} processes, {} channels",
        ex.net.len(),
        ex.net.edges().len()
    );

    // 4. AAA mapping/scheduling onto a ring of 9 (master + 8 workers).
    let arch = Architecture::ring_t9000(9);
    let mut pins = HashMap::new();
    for node in ex.net.nodes() {
        if !matches!(node.kind, skipper_net::graph::NodeKind::Worker(_)) {
            pins.insert(node.id, ProcId(0));
        }
    }
    for farm in &ex.farms {
        for (i, &w) in farm.handles.workers.iter().enumerate() {
            pins.insert(w, ProcId(1 + i % 8));
        }
    }
    let sched = schedule_with(&ex.net, &arch, &pins, Strategy::MinFinish).expect("schedules");
    println!(
        "\n— adequation — predicted makespan {:.2} ms on {}",
        sched.makespan_ns as f64 / 1e6,
        arch.topology().name()
    );

    // 5. Macro-code generation + deadlock verification.
    let progs = generate(&ex.net, &sched, &arch);
    check_deadlock_free(&progs, 3).expect("dead-lock free executive");
    println!("\n— generated executive (P0 macro-code) —");
    print!("{}", progs[0].emit_m4(&ex.net));
    println!("\n(executive verified dead-lock free over 3 iterations)");
}
