//! The paper's §4 case study: real-time vehicle detection and tracking on
//! a simulated ring of 8 T9000-class Transputers at 25 Hz, 512×512.
//!
//! ```text
//! cargo run --release --example vehicle_tracking
//! ```

use skipper_apps::tracker_sim::run_tracker_sim;
use skipper_apps::tracking::Mode;
use skipper_vision::synth::{Occlusion, Scene, SceneConfig};
use std::sync::Arc;
use transvision::cost::MS;

fn main() {
    let mut scene = Scene::with_vehicles(
        SceneConfig {
            noise_amplitude: 8,
            seed: 5,
            ..SceneConfig::default()
        },
        1,
    );
    // A 3-frame occlusion forces a reinitialisation mid-sequence.
    scene.add_occlusion(Occlusion {
        vehicle: 0,
        t0: 8.0 / 25.0,
        t1: 11.0 / 25.0,
        hidden_marks: 2,
    });

    println!("scheduling the tracker onto ring(8) and running 16 frames…\n");
    let report = run_tracker_sim(Arc::new(scene), 8, 16).expect("tracker runs");

    println!("frame  mode       marks  latency(ms)");
    for (f, lat) in report.frames.iter().zip(&report.exec.latencies_ns) {
        println!(
            "{:>5}  {:<9}  {:>5}  {:>10.1}",
            f.frame,
            format!("{:?}", f.mode),
            f.marks,
            *lat as f64 / MS as f64
        );
    }
    if let Some(t) = report.mean_latency_in(Mode::Tracking) {
        println!(
            "\nmean tracking latency      : {:.1} ms (paper: ~30 ms)",
            t as f64 / MS as f64
        );
    }
    if let Some(r) = report.mean_latency_in(Mode::Init) {
        println!(
            "mean reinitialisation      : {:.1} ms (paper: ~110 ms)",
            r as f64 / MS as f64
        );
    }
    println!("\nprocessor chronogram (one row per processor, # = busy):");
    print!("{}", report.exec.sim.trace.chronogram(100));
}
