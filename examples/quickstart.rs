//! Quickstart: the four SKiPPER skeletons on toy data.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skipper::{Df, IterMem, Scm, Tf};

fn main() {
    // df — data farming: irregular items, dynamic load balancing.
    let farm = Df::new(4, |s: &String| s.len(), |z, l| z + l, 0usize);
    let words: Vec<String> = ["skeleton", "based", "parallel", "programming"]
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("df   : total length = {}", farm.run_par(&words));
    assert_eq!(farm.run_par(&words), farm.run_seq(&words));

    // scm — split/compute/merge: regular geometric decomposition.
    let scm = Scm::new(
        4,
        |v: &Vec<u64>, n| v.chunks(v.len().div_ceil(n)).map(<[u64]>::to_vec).collect(),
        |chunk: Vec<u64>| chunk.iter().sum::<u64>(),
        |partials: Vec<u64>| partials.into_iter().sum::<u64>(),
    );
    let data: Vec<u64> = (1..=100).collect();
    println!("scm  : sum 1..=100 = {}", scm.run_par(&data));

    // tf — task farming: divide and conquer with work generation.
    let tf = Tf::new(
        4,
        |depth: u32| {
            if depth == 0 {
                (vec![], Some(1u64))
            } else {
                (vec![depth - 1, depth - 1], None)
            }
        },
        |z, leaves| z + leaves,
        0u64,
    );
    println!(
        "tf   : leaves of a depth-10 binary tree = {}",
        tf.run_par(vec![10])
    );

    // itermem — stream loop with state memory (Fig. 4).
    let mut loop_ = IterMem::new(
        skipper::itermem::stream_of(1..=5),
        |state: i64, frame: i64| (state + frame, state + frame),
        |running_total| println!("itermem: running total = {running_total}"),
        0,
    );
    loop_.run();
    println!("itermem final state = {}", loop_.into_state());
}
