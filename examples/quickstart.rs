//! Quickstart: the four SKiPPER skeletons as programs, run through
//! interchangeable backends.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use skipper::{df, itermem, scm, tf, Backend, SeqBackend, ThreadBackend};

fn main() {
    let seq = SeqBackend;
    let threads = ThreadBackend::new();

    // df — data farming: irregular items, dynamic load balancing.
    let farm = df(4, |s: &String| s.len(), |z, l| z + l, 0usize);
    let words: Vec<String> = ["skeleton", "based", "parallel", "programming"]
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("df   : total length = {}", threads.run(&farm, &words[..]));
    assert_eq!(threads.run(&farm, &words[..]), seq.run(&farm, &words[..]));

    // scm — split/compute/merge: regular geometric decomposition.
    let sum = scm(
        4,
        |v: &Vec<u64>, n| v.chunks(v.len().div_ceil(n)).map(<[u64]>::to_vec).collect(),
        |chunk: Vec<u64>| chunk.iter().sum::<u64>(),
        |partials: Vec<u64>| partials.into_iter().sum::<u64>(),
    );
    let data: Vec<u64> = (1..=100).collect();
    println!("scm  : sum 1..=100 = {}", threads.run(&sum, &data));

    // tf — task farming: divide and conquer with work generation.
    let leaves = tf(
        4,
        |depth: u32| {
            if depth == 0 {
                (vec![], Some(1u64))
            } else {
                (vec![depth - 1, depth - 1], None)
            }
        },
        |z, n| z + n,
        0u64,
    );
    println!(
        "tf   : leaves of a depth-10 binary tree = {}",
        threads.run(&leaves, vec![10])
    );

    // itermem — stream loop with state memory (Fig. 4), here with an scm
    // body: the paper's tracking-loop shape `itermem(scm(...), z0)`.
    let body = scm(
        2,
        |t: &(i64, i64), n| (0..n as i64).map(|k| t.0 + t.1 + k).collect::<Vec<_>>(),
        |x: i64| x,
        |parts: Vec<i64>| {
            let s: i64 = parts.iter().sum();
            (s, s)
        },
    );
    let tracker = itermem(body, 0i64);
    let frames = vec![1i64, 2, 3, 4, 5];
    let (final_state, outputs) = threads.run(&tracker, frames);
    println!("itermem: per-frame outputs = {outputs:?}, final state = {final_state}");
}
