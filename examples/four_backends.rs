//! One program, four machines: the paper's retargetability claim as a
//! short demo.
//!
//! A single `df` farm value is executed by
//!
//! 1. [`SeqBackend`] — the declarative specification (workstation
//!    emulation),
//! 2. [`ThreadBackend`] — the crossbeam operational semantics (real host
//!    parallelism, threads spawned per run),
//! 3. [`PoolBackend`] — the same operational semantics on a persistent
//!    work-stealing pool (threads created once, reused every run),
//! 4. [`SimBackend`] — the full environment pipeline: process-network
//!    expansion, SynDEx scheduling, macro-code generation and execution
//!    on the simulated Transputer ring,
//!
//! and all four produce the same result.
//!
//! ```text
//! cargo run --example four_backends
//! ```

use skipper::{df, itermem, scm, Backend, PoolBackend, SeqBackend, ThreadBackend};
use skipper_exec::SimBackend;

fn main() {
    // The program: sum of squares over an irregular item list.
    let farm = df(4, |x: &i64| x * x, |z: i64, y| z + y, 0i64);
    let xs: Vec<i64> = (1..=64).collect();

    let emulated = SeqBackend.run(&farm, &xs[..]);
    let threaded = ThreadBackend::new().run(&farm, &xs[..]);
    let pool = PoolBackend::new();
    let pooled = pool.run(&farm, &xs[..]);
    let simulated = SimBackend::ring(5)
        .run(&farm, &xs[..])
        .expect("farm lowers, schedules and simulates");

    println!("SeqBackend     (declarative spec) : {emulated}");
    println!("ThreadBackend  (host threads)     : {threaded}");
    println!("PoolBackend    (persistent pool)  : {pooled}");
    println!("SimBackend     (ring of 5 T9000s) : {simulated}");
    assert_eq!(emulated, threaded);
    assert_eq!(emulated, pooled);
    assert_eq!(emulated, simulated);

    // The same retargetability holds for composed programs: the paper's
    // tracking-loop shape, itermem(scm(...), z0). This is where the pool
    // earns its keep — one skeleton run per frame, zero spawns.
    let body = scm(
        3,
        |t: &(i64, i64), n| (0..n as i64).map(|k| (t.0, t.1 + k)).collect::<Vec<_>>(),
        |(state, frame): (i64, i64)| state + frame,
        |parts: Vec<i64>| {
            let s: i64 = parts.iter().sum();
            (s, s)
        },
    );
    let tracker = itermem(body, 0i64);
    let frames = vec![10i64, 20, 30];
    let seq = SeqBackend.run(&tracker, frames.clone());
    let par = ThreadBackend::new().run(&tracker, frames.clone());
    let pld = pool.run(&tracker, frames.clone());
    let sim = SimBackend::ring(4)
        .run(&tracker, frames)
        .expect("loop lowers, schedules and simulates");
    println!("itermem(scm)   seq/threads/pool/sim : {seq:?} / {par:?} / {pld:?} / {sim:?}");
    assert_eq!(seq, par);
    assert_eq!(seq, pld);
    assert_eq!(seq, sim);
    println!("all backends agree — one program, four machines");
}
