//! The frame-serving engine: many camera streams, one shared pool.
//!
//! Where `prepared_stream` drives ONE stream through a prepared
//! executable, this example drives MANY: `skipper::serve` multiplexes
//! concurrent `itermem`-shaped streams (state threaded across frames)
//! over a single `PoolBackend`, with admission control at the door,
//! per-stream backpressure, and cross-stream batching of small frames
//! into shared pool jobs.
//!
//! ```sh
//! cargo run --example serving
//! ```

use skipper::serve::traffic;
use skipper::{
    scm, serve, AdmissionPolicy, PoolBackend, ServeConfig, Skeleton, StreamSpec, Workers,
};

// The per-stream loop body: a 2-way scm over (state, frame) pairs. The
// split halves the frame (state rides the first part), the computes sum
// hashed samples, and the merge folds both halves into the new state —
// fn pointers, so the program is Sync and shared by every worker.
type Body = skipper::Scm<
    fn(&(u64, Vec<u64>), usize) -> Vec<(u64, Vec<u64>)>,
    fn((u64, Vec<u64>)) -> u64,
    fn(Vec<u64>) -> (u64, u64),
>;

fn split(pair: &(u64, Vec<u64>), n: usize) -> Vec<(u64, Vec<u64>)> {
    let (z, frame) = pair;
    let mid = frame.len() / 2;
    let mut parts = vec![(*z, frame[..mid].to_vec()), (0, frame[mid..].to_vec())];
    parts.truncate(n.max(1));
    parts
}

fn compute((z, part): (u64, Vec<u64>)) -> u64 {
    z + part.iter().map(|&x| x.wrapping_mul(31) % 997).sum::<u64>()
}

fn merge(parts: Vec<u64>) -> (u64, u64) {
    let y: u64 = parts.iter().sum();
    (y % 100_003, y)
}

fn body() -> Body {
    scm(2, split as _, compute as _, merge as _)
}

fn main() {
    let body = body();
    let backend = PoolBackend::configured(Workers::FromEnv);
    const STREAMS: usize = 24;
    const FRAMES: usize = 30;

    // Open-loop traffic: each stream gets Poisson arrivals at its own
    // rate (a skewed ladder: a few hot cameras, a long cool tail).
    let rates = traffic::skewed_rates_hz(50_000.0, STREAMS, 0.2);
    let specs: Vec<StreamSpec<u64, Vec<u64>>> = (0..STREAMS)
        .map(|s| {
            let arrivals = traffic::poisson_arrivals_ns(s as u64, rates[s], FRAMES);
            let frames = (0..FRAMES).map(|k| (0..48u64).map(|i| (s + k) as u64 + i).collect());
            StreamSpec::timed(0u64, traffic::timed(&arrivals, frames))
        })
        .collect();

    // Block admission: lossless backpressure — every frame is eventually
    // served, and each stream's outputs equal its sequential run.
    let config = ServeConfig {
        max_in_flight: 64,
        per_stream_queue: 4,
        max_batch: 8,
        admission: AdmissionPolicy::Block,
    };
    let outcome = serve(&backend, &body, specs, config);
    println!(
        "served {} frames from {STREAMS} streams in {} batches ({:.1} frames/batch) \
         on {} pool thread(s)",
        outcome.report.served,
        outcome.report.batches,
        outcome.report.served as f64 / outcome.report.batches.max(1) as f64,
        backend.threads(),
    );
    println!(
        "throughput {:.0} frames/s, latency p50 {:.1} us / p95 {:.1} us / p99 {:.1} us",
        outcome.report.throughput_fps(),
        outcome.report.latency_percentile_ns(50.0) as f64 / 1e3,
        outcome.report.latency_percentile_ns(95.0) as f64 / 1e3,
        outcome.report.latency_percentile_ns(99.0) as f64 / 1e3,
    );

    // Serving is observably transparent: stream 0's outputs must equal
    // the plain sequential fold of the same loop body.
    let mut z = 0u64;
    let mut expected = Vec::new();
    for k in 0..FRAMES {
        let frame: Vec<u64> = (0..48u64).map(|i| k as u64 + i).collect();
        let (z2, y) = body.run_declarative(&(z, frame));
        z = z2;
        expected.push(y);
    }
    assert_eq!(outcome.streams[0].outputs, expected);
    assert_eq!(outcome.streams[0].state, z);
    println!("stream 0 checked against its sequential fold: OK");

    // Same load through a tight Reject window: the engine sheds frames
    // at the door instead of queueing them.
    let specs: Vec<StreamSpec<u64, Vec<u64>>> = (0..STREAMS)
        .map(|s| {
            let frames: Vec<Vec<u64>> = (0..FRAMES)
                .map(|k| (0..48u64).map(|i| (s + k) as u64 + i).collect())
                .collect();
            StreamSpec::eager(0u64, skipper::stream_of(frames))
        })
        .collect();
    let outcome = serve(
        &backend,
        &body,
        specs,
        ServeConfig {
            max_in_flight: 16,
            per_stream_queue: 1,
            max_batch: 8,
            admission: AdmissionPolicy::Reject,
        },
    );
    println!(
        "reject policy under the same load: served {}, shed {} at the admission door",
        outcome.report.served, outcome.report.rejected,
    );
}
