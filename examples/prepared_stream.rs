//! Prepare once, run many: a frame loop over prepared executables.
//!
//! SKiPPER compiles a skeleton program *offline* and executes it *online*
//! once per frame at video rate. `Backend::prepare` is that split as an
//! API: the program is compiled into an `Executable` once (worker counts
//! and pool handles on the host; the whole lowering → SynDEx scheduling →
//! macro-code pipeline on the simulator), and the frame loop then pays
//! only the run cost.
//!
//! ```sh
//! cargo run --example prepared_stream
//! ```

use skipper::{df, Backend, Executable, PoolBackend, SeqBackend};
use skipper_exec::SimBackend;
use std::time::Instant;

fn main() {
    // A per-frame detection farm: each frame carries a handful of
    // "windows" whose checksums are folded into one result.
    // The argument-dependent cost model feeds the SynDEx scheduler
    // (model(1) as the static WCET hint) and the simulator's virtual
    // clock (evaluated on each actual window's size).
    let farm = df(
        4,
        |&u: &u64| u.wrapping_mul(2654435761) ^ (u >> 3),
        |z: u64, y: u64| z.wrapping_add(y),
        0u64,
    )
    .with_cost_model(|size| size as u64 * 25_000);
    let frames: Vec<Vec<u64>> = (0..100)
        .map(|k| {
            (0..12)
                .map(|i| ((k * 13 + i * 7) % 89 + 1) as u64)
                .collect()
        })
        .collect();

    // Prepare once per backend. The input type is spelled out because a
    // farm also runs as an `itermem` loop body, so `prepare` alone cannot
    // infer which program shape is meant.
    let pool = PoolBackend::new();
    let pool_exec = Backend::<_, &[u64]>::prepare(&pool, &farm);
    let sim = SimBackend::ring(4);
    let t0 = Instant::now();
    let sim_exec = Backend::<_, &[u64]>::prepare(&sim, &farm);
    println!(
        "sim prepare (lower + schedule + codegen, once): {:.1} us",
        t0.elapsed().as_secs_f64() * 1e6
    );
    println!(
        "sim schedule: predicted makespan {:.1} us/frame",
        sim_exec.schedule().expect("prepared").makespan_ns as f64 / 1e3
    );

    // The frame loop: every frame is one `Executable::run` — no thread
    // spawning, no re-lowering, no re-scheduling.
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for frame in &frames {
        let on_pool = pool_exec.run(&frame[..]);
        let on_sim = sim_exec.run(&frame[..]).expect("prepared farm simulates");
        let golden = SeqBackend.run(&farm, &frame[..]);
        assert_eq!(on_pool, golden, "pool executable must match emulation");
        assert_eq!(on_sim, golden, "sim executable must match emulation");
        checksum = checksum.wrapping_add(golden);
    }
    let per_frame = t0.elapsed().as_secs_f64() * 1e6 / frames.len() as f64;
    println!(
        "{} frames through both prepared executables: {:.1} us/frame (checksum {:x})",
        frames.len(),
        per_frame,
        checksum
    );
    println!(
        "pool workers: {} (prepared handle, shared across frames)",
        pool.threads()
    );
}
