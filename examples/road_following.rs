//! Road following by white-line detection with the scm skeleton
//! (paper ref [6]).
//!
//! ```text
//! cargo run --release --example road_following
//! ```

use skipper_apps::road::{detect_line_scm, lane_offset};
use skipper_vision::synth::render_road_frame;

fn main() {
    println!("frame  true offset(px)  estimated offset(px)  steering");
    for k in 0..10 {
        // The lane marking drifts sinusoidally; the controller must follow.
        let off = 60.0 * (k as f64 * 0.5).sin();
        let (img, _) = render_road_frame(512, 384, off, 0.08, k);
        let line = detect_line_scm(&img, 4).expect("marking visible");
        let est = lane_offset(&line, 512, 384);
        let steer = if est > 5.0 {
            "steer right"
        } else if est < -5.0 {
            "steer left"
        } else {
            "hold"
        };
        println!("{k:>5}  {off:>15.1}  {est:>20.1}  {steer}");
    }
}
