//! SKiPPER: a skeleton-based parallel programming environment for
//! real-time image processing — a full reproduction in Rust.
//!
//! This umbrella crate re-exports the whole environment (Sérot, Ginhac,
//! Dérutin, PaCT-99):
//!
//! | Layer | Crate | Paper counterpart |
//! |---|---|---|
//! | skeleton library | [`skipper`] | the scm/df/tf/itermem repertoire (§2) |
//! | ML front-end | [`skipper_lang`] | the custom Caml compiler (§3) |
//! | process networks | [`skipper_net`] | PNTs and skeleton expansion (Fig. 1/4) |
//! | AAA back-end | [`skipper_syndex`] | SynDEx mapping/scheduling (§3) |
//! | executive | [`skipper_exec`] | the m4 macro-code + kernel primitives (§3) |
//! | platform | [`transvision`] | the Transputer machine (simulated) |
//! | image processing | [`skipper_vision`] | the sequential C functions |
//! | applications | [`skipper_apps`] | tracking, CCL, road following (§4) |
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! A program is written once as a [`skipper::Skeleton`] value and handed
//! to an interchangeable [`skipper::Backend`] — sequential emulation,
//! host threads, or the full SynDEx-to-simulator pipeline
//! (`skipper_exec::SimBackend`):
//!
//! ```
//! use skipper::{df, Backend, SeqBackend, ThreadBackend};
//! let farm = df(4, |x: &u64| x * x, |z: u64, y| z + y, 0u64);
//! let xs: Vec<u64> = (1..=10).collect();
//! assert_eq!(
//!     ThreadBackend::new().run(&farm, &xs[..]),
//!     SeqBackend.run(&farm, &xs[..]),
//! );
//! ```

pub use skipper;
pub use skipper_apps;
pub use skipper_exec;
pub use skipper_lang;
pub use skipper_net;
pub use skipper_syndex;
pub use skipper_vision;
pub use transvision;
