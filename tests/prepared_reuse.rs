//! Prepared-executable reuse property suite.
//!
//! The prepare-once/run-many contract: for every backend, `prepare` once
//! followed by `N` [`Executable::run`] calls must produce exactly the
//! results of `N` fresh [`Backend::run`] calls — on generated inputs, in
//! generated run orders, on all four backends (the declarative
//! [`SeqBackend`], the scoped-thread [`ThreadBackend`], the persistent
//! [`PoolBackend`] and the simulator [`SimBackend`]), including an
//! `itermem` frame-stream program. Divergence here means a prepared
//! executable leaks state between runs or resolves its execution
//! structure differently from the one-shot path.

use proptest::prelude::*;
use skipper::{df, itermem, scm, Backend, Executable, PoolBackend, SeqBackend, ThreadBackend};
use skipper_exec::SimBackend;

/// The satellite worker-count matrix: 1, 2 and the host default.
fn worker_count(index: usize) -> usize {
    let counts = [1, 2, skipper::default_workers().get()];
    counts[index % counts.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// df: prepare once + N runs == N fresh runs on all four backends.
    #[test]
    fn df_prepared_reuse_equals_fresh_runs(
        runs in prop::collection::vec(prop::collection::vec(0i64..500, 0..40), 1..5),
        widx in 0usize..3,
        nprocs in 1usize..5,
    ) {
        let farm = df(worker_count(widx), |x: &i64| x * x + 2, |z: i64, y| z + y, 1i64);
        let thread = ThreadBackend::new();
        let pool = PoolBackend::new();
        let sim = SimBackend::ring(nprocs);
        let seq_exec = Backend::<_, &[i64]>::prepare(&SeqBackend, &farm);
        let thread_exec = Backend::<_, &[i64]>::prepare(&thread, &farm);
        let pool_exec = Backend::<_, &[i64]>::prepare(&pool, &farm);
        let sim_exec = Backend::<_, &[i64]>::prepare(&sim, &farm);
        for xs in &runs {
            let fresh = SeqBackend.run(&farm, &xs[..]);
            prop_assert_eq!(seq_exec.run(&xs[..]), fresh);
            prop_assert_eq!(thread_exec.run(&xs[..]), thread.run(&farm, &xs[..]));
            prop_assert_eq!(thread_exec.run(&xs[..]), fresh);
            prop_assert_eq!(pool_exec.run(&xs[..]), fresh);
            prop_assert_eq!(
                sim_exec.run(&xs[..]).expect("prepared df simulates"),
                sim.run(&farm, &xs[..]).expect("fresh df simulates")
            );
            prop_assert_eq!(sim_exec.run(&xs[..]).expect("prepared df simulates"), fresh);
        }
    }

    /// scm: prepared reuse on all four backends.
    #[test]
    fn scm_prepared_reuse_equals_fresh_runs(
        runs in prop::collection::vec(prop::collection::vec(-300i64..300, 0..40), 1..5),
        widx in 0usize..3,
        nprocs in 1usize..4,
    ) {
        let prog = scm(
            worker_count(widx),
            |v: &Vec<i64>, n| {
                let mut out = vec![Vec::new(); n];
                for (i, &x) in v.iter().enumerate() {
                    out[i % n].push(x);
                }
                out
            },
            |chunk: Vec<i64>| chunk.iter().map(|x| x * 5 - 2).sum::<i64>(),
            |parts: Vec<i64>| parts.iter().sum::<i64>(),
        );
        let thread = ThreadBackend::new();
        let pool = PoolBackend::new();
        let sim = SimBackend::ring(nprocs);
        let seq_exec = SeqBackend.prepare(&prog);
        let thread_exec = thread.prepare(&prog);
        let pool_exec = pool.prepare(&prog);
        let sim_exec = sim.prepare(&prog);
        for xs in &runs {
            let fresh = SeqBackend.run(&prog, xs);
            prop_assert_eq!(seq_exec.run(xs), fresh);
            prop_assert_eq!(thread_exec.run(xs), fresh);
            prop_assert_eq!(pool_exec.run(xs), fresh);
            prop_assert_eq!(sim_exec.run(xs).expect("prepared scm simulates"), fresh);
        }
    }

    /// itermem frame streams: one prepared loop executable re-run over
    /// several generated streams equals fresh runs, state fully reset
    /// between streams.
    #[test]
    fn itermem_prepared_reuse_equals_fresh_runs(
        streams in prop::collection::vec(prop::collection::vec(-40i64..40, 0..7), 1..4),
        widx in 0usize..3,
        nprocs in 1usize..4,
    ) {
        let body = scm(
            worker_count(widx),
            |t: &(i64, i64), n| {
                (0..n as i64).map(|k| (t.0 + k, t.1)).collect::<Vec<(i64, i64)>>()
            },
            |(z, b): (i64, i64)| z * 3 + b,
            |parts: Vec<i64>| {
                let s: i64 = parts.iter().sum();
                (s, s + 2)
            },
        );
        let prog = itermem(body, 6i64);
        let thread = ThreadBackend::new();
        let pool = PoolBackend::new();
        let sim = SimBackend::ring(nprocs);
        let seq_exec = Backend::<_, Vec<i64>>::prepare(&SeqBackend, &prog);
        let thread_exec = Backend::<_, Vec<i64>>::prepare(&thread, &prog);
        let pool_exec = Backend::<_, Vec<i64>>::prepare(&pool, &prog);
        let sim_exec = Backend::<_, Vec<i64>>::prepare(&sim, &prog);
        for frames in &streams {
            let fresh = SeqBackend.run(&prog, frames.clone());
            prop_assert_eq!(seq_exec.run(frames.clone()), fresh.clone());
            prop_assert_eq!(thread_exec.run(frames.clone()), fresh.clone());
            prop_assert_eq!(pool_exec.run(frames.clone()), fresh.clone());
            prop_assert_eq!(
                sim_exec.run(frames.clone()).expect("prepared loop simulates"),
                fresh
            );
        }
    }
}

/// Deterministic: a prepared `itermem(df)` executable over the worker
/// matrix, interleaving repeated streams (state must not leak), plus the
/// empty stream on every backend.
#[test]
fn prepared_loop_interleaving_and_empty_streams_are_clean() {
    for workers in [1, 2, skipper::default_workers().get()] {
        let prog = itermem(df(workers, |x: &i64| x * 7, |z: i64, y| z + y, 0i64), 3i64);
        let thread = ThreadBackend::new();
        let pool = PoolBackend::new();
        let sim = SimBackend::ring(3);
        let seq_exec = Backend::<_, Vec<Vec<i64>>>::prepare(&SeqBackend, &prog);
        let thread_exec = Backend::<_, Vec<Vec<i64>>>::prepare(&thread, &prog);
        let pool_exec = Backend::<_, Vec<Vec<i64>>>::prepare(&pool, &prog);
        let sim_exec = Backend::<_, Vec<Vec<i64>>>::prepare(&sim, &prog);
        let streams: [Vec<Vec<i64>>; 4] = [
            vec![vec![1, 2], Vec::new(), vec![3]],
            Vec::new(),
            vec![vec![5]],
            vec![vec![1, 2], Vec::new(), vec![3]], // repeat of the first
        ];
        for frames in &streams {
            let fresh = SeqBackend.run(&prog, frames.clone());
            assert_eq!(seq_exec.run(frames.clone()), fresh, "workers={workers}");
            assert_eq!(thread_exec.run(frames.clone()), fresh, "workers={workers}");
            assert_eq!(pool_exec.run(frames.clone()), fresh, "workers={workers}");
            assert_eq!(
                sim_exec
                    .run(frames.clone())
                    .expect("prepared loop simulates"),
                fresh,
                "workers={workers}"
            );
        }
    }
}
