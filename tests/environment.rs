//! Cross-crate integration: the whole environment pipeline on one program
//! (parse → type check → expand → schedule → macro-code → executive), with
//! emulation-vs-execution equality.

use skipper_bench::pipeline;
use skipper_lang::parser::parse_program;
use skipper_lang::types::check_program;
use skipper_net::validate::is_well_formed;
use skipper_syndex::analysis::{check_deadlock_free, comm_volume};
use skipper_syndex::macrocode::generate;
use skipper_syndex::schedule::{schedule_with, Strategy};
use skipper_syndex::Architecture;
use std::collections::HashMap;
use transvision::topology::ProcId;

#[test]
fn mini_tracker_source_typechecks() {
    let prog = parse_program(pipeline::MINI_TRACKER_ML).unwrap();
    let types = check_program(&pipeline::mini_tracker_env(), &prog).unwrap();
    assert_eq!(types.scheme_of("main").unwrap().ty.to_string(), "unit");
}

#[test]
fn expansion_is_well_formed_and_schedulable_everywhere() {
    let ex = pipeline::expand_mini_tracker().unwrap();
    assert!(is_well_formed(&ex.net));
    for nprocs in [2usize, 3, 4, 8] {
        let arch = Architecture::ring_t9000(nprocs);
        let mut pins = HashMap::new();
        for node in ex.net.nodes() {
            if !matches!(node.kind, skipper_net::graph::NodeKind::Worker(_)) {
                pins.insert(node.id, ProcId(0));
            }
        }
        for f in &ex.farms {
            for (i, &w) in f.handles.workers.iter().enumerate() {
                pins.insert(w, ProcId(1 + i % (nprocs - 1)));
            }
        }
        let sched = schedule_with(&ex.net, &arch, &pins, Strategy::MinFinish).unwrap();
        let progs = generate(&ex.net, &sched, &arch);
        check_deadlock_free(&progs, 3).unwrap_or_else(|e| panic!("{nprocs} procs: {e}"));
        // All static stages are pinned to P0, so the *static* executive has
        // no messages; the farm's traffic is scheduled dynamically at run
        // time (the paper's mixed static/dynamic scheduling).
        assert_eq!(comm_volume(&progs), 0);
    }
}

#[test]
fn emulation_equals_execution_across_machines() {
    let emu = pipeline::emulate_mini_tracker(6).unwrap();
    for nprocs in [1usize, 2, 5] {
        let (out, _) = pipeline::simulate_mini_tracker(nprocs, 6).unwrap();
        assert_eq!(out, emu, "{nprocs} processors");
    }
}

#[test]
fn bigger_machines_do_not_increase_makespan() {
    let (_, r2) = pipeline::simulate_mini_tracker(2, 4).unwrap();
    let (_, r5) = pipeline::simulate_mini_tracker(5, 4).unwrap();
    assert!(
        r5.sim.end_ns <= r2.sim.end_ns * 11 / 10,
        "5 procs should not be much slower"
    );
}
