//! Workspace smoke test: the umbrella quickstart runs and every layer
//! re-exported by `skipper_env` is reachable through the facade.
//!
//! This exists so that manifest regressions — a crate dropped from the
//! workspace, a broken re-export in `src/lib.rs`, a renamed library
//! target — fail loudly and point here, instead of surfacing as a
//! confusing downstream import error.

/// The doc-quickstart from `src/lib.rs`, exercised through the facade
/// paths rather than the direct crate names.
#[test]
fn umbrella_quickstart_runs() {
    use skipper_env::skipper::{df, Backend, SeqBackend, ThreadBackend};
    let farm = df(4, |x: &u64| x * x, |z: u64, y: u64| z + y, 0u64);
    let xs: Vec<u64> = (1..=10).collect();
    assert_eq!(
        ThreadBackend::new().run(&farm, &xs[..]),
        SeqBackend.run(&farm, &xs[..])
    );
}

/// Touches one cheap, load-bearing item in each re-exported crate, in the
/// order of the layer table in `src/lib.rs`.
#[test]
fn every_reexported_crate_is_reachable() {
    // skeleton library
    use skipper_env::skipper::{Backend, ThreadBackend};
    let scm = skipper_env::skipper::scm(
        2,
        |v: &Vec<u32>, n| v.chunks(v.len().div_ceil(n)).map(<[u32]>::to_vec).collect(),
        |c: Vec<u32>| c.iter().sum::<u32>(),
        |ps: Vec<u32>| ps.iter().sum::<u32>(),
    );
    assert_eq!(
        ThreadBackend::new().run(&scm, &(1..=100).collect::<Vec<u32>>()),
        5050
    );

    // ML front-end
    let prog = skipper_env::skipper_lang::parse_program("let double = fun x -> x + x;;")
        .expect("front-end parses");
    drop(prog);

    // process networks
    let net = skipper_env::skipper_net::ProcessNetwork::new("smoke");
    assert_eq!(net.len(), 0);

    // AAA back-end
    let arch = skipper_env::skipper_syndex::Architecture::ring_t9000(4);
    drop(arch);

    // executive
    let v = skipper_env::skipper_exec::Value::Int(3);
    assert!(!format!("{v:?}").is_empty());

    // platform
    let topo = skipper_env::transvision::topology::Topology::ring(4);
    assert_eq!(topo.len(), 4);

    // image processing
    let mut img = skipper_env::skipper_vision::Image::<u8>::new(16, 16);
    img.fill_rect(2, 2, 4, 4, 255);

    // applications
    assert_eq!(
        skipper_env::skipper_apps::ccl::count_components_seq(&img),
        1
    );
}
