//! Cross-crate integration of the vehicle tracker: sequential
//! specification, thread backend and simulated platform must all agree.

use skipper_apps::tracker_sim::run_tracker_sim;
use skipper_apps::tracking::{init_state, loop_step_seq, loop_step_threads, Mode, TrackerConfig};
use skipper_vision::synth::{Scene, SceneConfig};
use std::sync::Arc;

fn scene() -> Scene {
    Scene::with_vehicles(
        SceneConfig {
            width: 256,
            height: 256,
            focal_px: 350.0,
            noise_amplitude: 6,
            seed: 9,
            ..SceneConfig::default()
        },
        1,
    )
}

fn tracker_cfg() -> TrackerConfig {
    TrackerConfig {
        nproc: 8,
        n_vehicles: 1,
        width: 256,
        height: 256,
        focal_px: 350.0,
        ..TrackerConfig::default()
    }
}

#[test]
fn specification_and_thread_backend_agree() {
    let sc = scene();
    let mut a = init_state(tracker_cfg());
    let mut b = init_state(tracker_cfg());
    for k in 0..8 {
        let img = sc.render(k as f64 / 25.0);
        let (na, ma) = loop_step_seq(&a, &img);
        let (nb, mb) = loop_step_threads(&b, &img);
        assert_eq!(ma, mb, "frame {k}");
        assert_eq!(na, nb, "frame {k}");
        a = na;
        b = nb;
    }
    assert_eq!(a.mode, Mode::Tracking, "tracker locked by frame 8");
}

#[test]
fn simulated_platform_results_are_machine_independent() {
    let sc = Arc::new(scene());
    let r1 = run_tracker_sim(Arc::clone(&sc), 1, 5).unwrap();
    let r4 = run_tracker_sim(Arc::clone(&sc), 4, 5).unwrap();
    let r8 = run_tracker_sim(sc, 8, 5).unwrap();
    let key = |r: &skipper_apps::tracker_sim::TrackerSimReport| {
        r.frames
            .iter()
            .map(|f| (f.mode, f.marks))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&r1), key(&r4));
    assert_eq!(key(&r4), key(&r8));
}

#[test]
fn parallel_machines_reduce_latency() {
    let sc = Arc::new(scene());
    let r1 = run_tracker_sim(Arc::clone(&sc), 1, 4).unwrap();
    let r8 = run_tracker_sim(sc, 8, 4).unwrap();
    assert!(
        r8.exec.mean_latency_ns() < r1.exec.mean_latency_ns(),
        "8 procs {} vs 1 proc {}",
        r8.exec.mean_latency_ns(),
        r1.exec.mean_latency_ns()
    );
}
