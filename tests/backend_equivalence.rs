//! Backend-equivalence property suite.
//!
//! The redesign's contract: one [`skipper::Skeleton`] program value must
//! produce identical results on every backend — the declarative
//! specification ([`SeqBackend`]), the crossbeam operational semantics
//! ([`ThreadBackend`]) and the full paper pipeline on the simulated
//! machine ([`SimBackend`]) — for all four skeletons on generated inputs,
//! including a nested `itermem(scm(...))` composition. Accumulation
//! functions are commutative-associative, the paper's stated side
//! condition for farm equivalence.

use proptest::prelude::*;
use skipper::{df, itermem, pure, scm, tf, Backend, Compose, SeqBackend, ThreadBackend};
use skipper_exec::SimBackend;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// df: all three backends agree on a commutative-associative fold.
    #[test]
    fn df_equivalent_on_all_backends(
        xs in prop::collection::vec(0i64..1000, 0..60),
        workers in 1usize..6,
        nprocs in 1usize..6,
    ) {
        let farm = df(workers, |x: &i64| x * x + 1, |z: i64, y| z + y, 0i64);
        let seq = SeqBackend.run(&farm, &xs[..]);
        prop_assert_eq!(ThreadBackend::new().run(&farm, &xs[..]), seq);
        let sim = SimBackend::ring(nprocs).run(&farm, &xs[..]).expect("df simulates");
        prop_assert_eq!(sim, seq);
    }

    /// scm: all three backends agree (the merge sees fragment order, so no
    /// commutativity side condition is needed).
    #[test]
    fn scm_equivalent_on_all_backends(
        xs in prop::collection::vec(-500i64..500, 0..60),
        workers in 1usize..6,
        nprocs in 1usize..5,
    ) {
        // Round-robin split: always exactly `workers` fragments, as the
        // statically-expanded process network requires.
        let prog = scm(
            workers,
            |v: &Vec<i64>, n| {
                let mut out = vec![Vec::new(); n];
                for (i, &x) in v.iter().enumerate() {
                    out[i % n].push(x);
                }
                out
            },
            |chunk: Vec<i64>| chunk.iter().map(|x| x * 3 - 1).collect::<Vec<i64>>(),
            |parts: Vec<Vec<i64>>| {
                let mut flat: Vec<i64> = parts.concat();
                flat.sort_unstable();
                flat
            },
        );
        let seq = SeqBackend.run(&prog, &xs);
        prop_assert_eq!(ThreadBackend::new().run(&prog, &xs), seq.clone());
        let sim = SimBackend::ring(nprocs).run(&prog, &xs).expect("scm simulates");
        prop_assert_eq!(sim, seq);
    }

    /// tf: all three backends agree on generated task trees.
    #[test]
    fn tf_equivalent_on_all_backends(
        roots in prop::collection::vec(1u64..200, 1..6),
        workers in 1usize..5,
        nprocs in 1usize..5,
    ) {
        let prog = tf(
            workers,
            |t: u64| {
                if t >= 8 {
                    (vec![t / 2, t / 3], Some(t))
                } else {
                    (vec![], Some(t))
                }
            },
            |z: u64, o: u64| z.wrapping_add(o.wrapping_mul(31)),
            0u64,
        );
        let seq = SeqBackend.run(&prog, roots.clone());
        prop_assert_eq!(ThreadBackend::new().run(&prog, roots.clone()), seq);
        let sim = SimBackend::ring(nprocs).run(&prog, roots).expect("tf simulates");
        prop_assert_eq!(sim, seq);
    }

    /// itermem(scm(...)): the nested tracking-loop composition threads its
    /// state identically on all three backends.
    #[test]
    fn itermem_scm_equivalent_on_all_backends(
        frames in prop::collection::vec(-50i64..50, 0..8),
        workers in 1usize..4,
        nprocs in 1usize..4,
    ) {
        let body = scm(
            workers,
            |t: &(i64, i64), n| {
                (0..n as i64).map(|k| (t.0 + k, t.1)).collect::<Vec<(i64, i64)>>()
            },
            |(z, b): (i64, i64)| z * 2 + b,
            |parts: Vec<i64>| {
                let s: i64 = parts.iter().sum();
                (s, s - 1)
            },
        );
        let prog = itermem(body, 3i64);
        let seq = SeqBackend.run(&prog, frames.clone());
        prop_assert_eq!(ThreadBackend::new().run(&prog, frames.clone()), seq.clone());
        let sim = SimBackend::ring(nprocs).run(&prog, frames).expect("loop simulates");
        prop_assert_eq!(sim, seq);
    }

    /// then-pipelines: a farm piped into a lifted function agrees across
    /// backends.
    #[test]
    fn then_pipeline_equivalent_on_all_backends(
        xs in prop::collection::vec(0i64..100, 0..40),
        workers in 1usize..5,
        nprocs in 1usize..5,
    ) {
        let prog = df(workers, |x: &i64| x + 7, |z: i64, y| z + y, 0i64)
            .then(pure(|total: i64| (total, total % 10)));
        let seq = SeqBackend.run(&prog, &xs[..]);
        prop_assert_eq!(ThreadBackend::new().run(&prog, &xs[..]), seq);
        let sim = SimBackend::ring(nprocs).run(&prog, &xs[..]).expect("pipeline simulates");
        prop_assert_eq!(sim, seq);
    }
}
