//! Backend-equivalence property suite.
//!
//! The redesign's contract: one [`skipper::Skeleton`] program value must
//! produce identical results on every backend — the declarative
//! specification ([`SeqBackend`]), the crossbeam operational semantics
//! ([`ThreadBackend`]), the persistent work-stealing pool
//! ([`PoolBackend`]) and the full paper pipeline on the simulated
//! machine ([`SimBackend`]) — for all four skeletons on generated inputs,
//! including a nested `itermem(scm(...))` composition. Accumulation
//! functions are commutative-associative, the paper's stated side
//! condition for farm equivalence.
//!
//! Worker counts are drawn from the satellite matrix `{1, 2,
//! available_parallelism}` (degenerate single-worker scheduling, the
//! smallest truly parallel degree, and the host default), and every input
//! generator includes the empty and single-element cases.

use proptest::prelude::*;
use skipper::{
    df, itermem, pure, scm, tf, Backend, Compose, PoolBackend, SeqBackend, ThreadBackend,
};
use skipper_exec::SimBackend;

/// The satellite worker-count matrix: 1, 2 and the host default.
fn worker_count(index: usize) -> usize {
    let counts = [1, 2, skipper::default_workers().get()];
    counts[index % counts.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// df: all four backends agree on a commutative-associative fold.
    #[test]
    fn df_equivalent_on_all_backends(
        xs in prop::collection::vec(0i64..1000, 0..60),
        widx in 0usize..3,
        nprocs in 1usize..6,
    ) {
        let farm = df(worker_count(widx), |x: &i64| x * x + 1, |z: i64, y| z + y, 0i64);
        let seq = SeqBackend.run(&farm, &xs[..]);
        prop_assert_eq!(ThreadBackend::new().run(&farm, &xs[..]), seq);
        prop_assert_eq!(PoolBackend::new().run(&farm, &xs[..]), seq);
        let sim = SimBackend::ring(nprocs).run(&farm, &xs[..]).expect("df simulates");
        prop_assert_eq!(sim, seq);
    }

    /// scm: all four backends agree (the merge sees fragment order, so no
    /// commutativity side condition is needed).
    #[test]
    fn scm_equivalent_on_all_backends(
        xs in prop::collection::vec(-500i64..500, 0..60),
        widx in 0usize..3,
        nprocs in 1usize..5,
    ) {
        // Round-robin split: always exactly `workers` fragments, as the
        // statically-expanded process network requires.
        let prog = scm(
            worker_count(widx),
            |v: &Vec<i64>, n| {
                let mut out = vec![Vec::new(); n];
                for (i, &x) in v.iter().enumerate() {
                    out[i % n].push(x);
                }
                out
            },
            |chunk: Vec<i64>| chunk.iter().map(|x| x * 3 - 1).collect::<Vec<i64>>(),
            |parts: Vec<Vec<i64>>| {
                let mut flat: Vec<i64> = parts.concat();
                flat.sort_unstable();
                flat
            },
        );
        let seq = SeqBackend.run(&prog, &xs);
        prop_assert_eq!(ThreadBackend::new().run(&prog, &xs), seq.clone());
        prop_assert_eq!(PoolBackend::new().run(&prog, &xs), seq.clone());
        let sim = SimBackend::ring(nprocs).run(&prog, &xs).expect("scm simulates");
        prop_assert_eq!(sim, seq);
    }

    /// tf: all four backends agree on generated task trees (the empty
    /// root list included).
    #[test]
    fn tf_equivalent_on_all_backends(
        roots in prop::collection::vec(1u64..200, 0..6),
        widx in 0usize..3,
        nprocs in 1usize..5,
    ) {
        let prog = tf(
            worker_count(widx),
            |t: u64| {
                if t >= 8 {
                    (vec![t / 2, t / 3], Some(t))
                } else {
                    (vec![], Some(t))
                }
            },
            |z: u64, o: u64| z.wrapping_add(o.wrapping_mul(31)),
            0u64,
        );
        let seq = SeqBackend.run(&prog, roots.clone());
        prop_assert_eq!(ThreadBackend::new().run(&prog, roots.clone()), seq);
        prop_assert_eq!(PoolBackend::new().run(&prog, roots.clone()), seq);
        let sim = SimBackend::ring(nprocs).run(&prog, roots).expect("tf simulates");
        prop_assert_eq!(sim, seq);
    }

    /// itermem(scm(...)): the nested tracking-loop composition threads its
    /// state identically on all four backends.
    #[test]
    fn itermem_scm_equivalent_on_all_backends(
        frames in prop::collection::vec(-50i64..50, 0..8),
        widx in 0usize..3,
        nprocs in 1usize..4,
    ) {
        let body = scm(
            worker_count(widx),
            |t: &(i64, i64), n| {
                (0..n as i64).map(|k| (t.0 + k, t.1)).collect::<Vec<(i64, i64)>>()
            },
            |(z, b): (i64, i64)| z * 2 + b,
            |parts: Vec<i64>| {
                let s: i64 = parts.iter().sum();
                (s, s - 1)
            },
        );
        let prog = itermem(body, 3i64);
        let seq = SeqBackend.run(&prog, frames.clone());
        prop_assert_eq!(ThreadBackend::new().run(&prog, frames.clone()), seq.clone());
        prop_assert_eq!(PoolBackend::new().run(&prog, frames.clone()), seq.clone());
        let sim = SimBackend::ring(nprocs).run(&prog, frames).expect("loop simulates");
        prop_assert_eq!(sim, seq);
    }

    /// then-pipelines: a farm piped into a lifted function agrees across
    /// backends.
    #[test]
    fn then_pipeline_equivalent_on_all_backends(
        xs in prop::collection::vec(0i64..100, 0..40),
        widx in 0usize..3,
        nprocs in 1usize..5,
    ) {
        let prog = df(worker_count(widx), |x: &i64| x + 7, |z: i64, y| z + y, 0i64)
            .then(pure(|total: i64| (total, total % 10)));
        let seq = SeqBackend.run(&prog, &xs[..]);
        prop_assert_eq!(ThreadBackend::new().run(&prog, &xs[..]), seq);
        prop_assert_eq!(PoolBackend::new().run(&prog, &xs[..]), seq);
        let sim = SimBackend::ring(nprocs).run(&prog, &xs[..]).expect("pipeline simulates");
        prop_assert_eq!(sim, seq);
    }
}

/// Deterministic coverage of the degenerate inputs the generators only
/// sometimes produce: empty and single-element item lists, across the
/// full worker-count matrix, on every backend.
#[test]
fn degenerate_inputs_agree_on_every_backend_and_worker_count() {
    for workers in [1, 2, skipper::default_workers().get()] {
        let farm = df(workers, |x: &i64| x * 5 - 2, |z: i64, y| z + y, 3i64);
        let prog = scm(
            workers,
            |v: &Vec<i64>, n| {
                let mut out = vec![Vec::new(); n];
                for (i, &x) in v.iter().enumerate() {
                    out[i % n].push(x);
                }
                out
            },
            |chunk: Vec<i64>| chunk.iter().sum::<i64>(),
            |parts: Vec<i64>| parts.iter().sum::<i64>(),
        );
        let tree = tf(
            workers,
            |t: u64| {
                if t >= 4 {
                    (vec![t / 2], Some(t))
                } else {
                    (vec![], Some(t))
                }
            },
            |z: u64, o: u64| z + o,
            0u64,
        );
        let pool = PoolBackend::new();
        for xs in [Vec::new(), vec![17i64]] {
            let seq = SeqBackend.run(&farm, &xs[..]);
            assert_eq!(ThreadBackend::new().run(&farm, &xs[..]), seq);
            assert_eq!(pool.run(&farm, &xs[..]), seq);
            assert_eq!(
                SimBackend::ring(3)
                    .run(&farm, &xs[..])
                    .expect("df simulates"),
                seq,
                "df workers={workers} len={}",
                xs.len()
            );
            let seq = SeqBackend.run(&prog, &xs);
            assert_eq!(ThreadBackend::new().run(&prog, &xs), seq);
            assert_eq!(pool.run(&prog, &xs), seq);
            assert_eq!(
                SimBackend::ring(3).run(&prog, &xs).expect("scm simulates"),
                seq,
                "scm workers={workers} len={}",
                xs.len()
            );
        }
        for roots in [Vec::new(), vec![9u64]] {
            let seq = SeqBackend.run(&tree, roots.clone());
            assert_eq!(ThreadBackend::new().run(&tree, roots.clone()), seq);
            assert_eq!(pool.run(&tree, roots.clone()), seq);
            assert_eq!(
                SimBackend::ring(3)
                    .run(&tree, roots.clone())
                    .expect("tf simulates"),
                seq,
                "tf workers={workers} roots={}",
                roots.len()
            );
        }
    }
}
