//! The front-end's exit-code contract, property-tested: `skipperc` must
//! answer every input — however mangled — with a spanned diagnostic,
//! never a panic. Feeds arbitrary near-miss token streams and truncated
//! valid programs through the full parse → typecheck → compile pipeline.

use proptest::prelude::*;
use skipper_lang::compile::KernelRegistry;
use skipper_lang::{check_program, compile_source, parse_program, TypeEnv};

/// The DSL's token vocabulary plus a few lexically illegal fragments:
/// random sentences over this alphabet are "near-miss" programs — mostly
/// broken, occasionally parseable, which is exactly the input space a
/// compiler driver must survive.
const VOCAB: &[&str] = &[
    "let",
    "in",
    "fun",
    "if",
    "then",
    "else",
    "true",
    "false",
    "main",
    "loop",
    "x",
    "y",
    "z",
    "xs",
    "itermem",
    "df",
    "scm",
    "tf",
    "read",
    "show",
    "->",
    "=",
    ";;",
    ";",
    ",",
    "(",
    ")",
    "[",
    "]",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "<=",
    ">=",
    "<>",
    "0",
    "1",
    "42",
    "3.14",
    "\"s\"",
    "()",
    "_",
    "'",
    "@",
    "#",
    "\"unterminated",
];

/// A known-good program whose prefixes exercise every "unexpected EOF"
/// path in the parser.
const GOOD: &str = "let n = 2;;\n\
                    let loop (z, x) = let y = scm n (nsplit n) double sum_list x in (add z y, y);;\n\
                    let main = itermem ints loop show 0 ();;\n";

fn registry() -> KernelRegistry {
    let mut r = KernelRegistry::new();
    r.register_source("ints", "unit -> int", |_, i| {
        (i < 2).then(|| skipper_exec::Value::Int(i as i64))
    })
    .expect("source registers");
    r.register("double", "int -> int", |a| a[0].clone())
        .expect("kernel registers");
    r.register("add", "int -> int -> int", |a| a[0].clone())
        .expect("kernel registers");
    r.register("nsplit", "int -> int -> int list", |a| {
        skipper_exec::Value::list(vec![a[1].clone()])
    })
    .expect("kernel registers");
    r.register("sum_list", "int list -> int", |a| a[0].clone())
        .expect("kernel registers");
    r.register("show", "int -> unit", |_| skipper_exec::Value::Unit)
        .expect("kernel registers");
    r
}

/// The whole front-end on one source: every stage must return (with a
/// renderable diagnostic) rather than panic.
fn front_end_survives(src: &str) {
    if let Ok(prog) = parse_program(src) {
        let _ = check_program(&TypeEnv::with_skeletons(), &prog);
    }
    if let Err(d) = compile_source(&registry(), src) {
        // Rendering locates the span in the source; must also not panic.
        let rendered = d.render(src);
        assert!(!rendered.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary sentences over the token vocabulary neither panic the
    /// parser, the typechecker, nor the compiler.
    #[test]
    fn near_miss_token_streams_never_panic(
        picks in prop::collection::vec(0usize..47, 0..40),
        seps in prop::collection::vec(0usize..3, 0..40),
    ) {
        let mut src = String::new();
        for (i, p) in picks.iter().enumerate() {
            src.push_str(VOCAB[p % VOCAB.len()]);
            src.push_str(match seps.get(i).copied().unwrap_or(0) % 3 {
                0 => " ",
                1 => "\n",
                _ => "",
            });
        }
        front_end_survives(&src);
    }

    /// Every prefix of a valid program (chopped at a char boundary) is
    /// answered, not panicked at — the "unexpected EOF" paths.
    #[test]
    fn truncated_programs_never_panic(cut in 0usize..200) {
        let boundary = GOOD
            .char_indices()
            .map(|(i, _)| i)
            .chain([GOOD.len()])
            .nth(cut.min(GOOD.chars().count()))
            .unwrap_or(GOOD.len());
        front_end_survives(&GOOD[..boundary]);
    }
}

/// Deterministic fixtures for the classic parser/lexer edge cases, so a
/// regression shows up as a named failing test, not a property
/// counterexample.
#[test]
fn malformed_fixtures_yield_diagnostics() {
    let fixtures = [
        "",
        "let main = ;;",
        "let = 1;;",
        "((((",
        "let (a, = 1;;",
        "let (a, b = 1;;",
        "fun -> 3",
        "let f = fun;;",
        "\"never closed",
        "let x = 1 in",
        "let x = [1; ;;",
        "let t = (1, );;",
        "let main = itermem;;",
        "let main = itermem read loop show 0 () extra;;",
        "let p (x, (y, ) = x;;",
        "let q = 9999999999999999999999999;;",
        "let r = 'rogue;;",
        "let s = #! let;;",
    ];
    for src in fixtures {
        match compile_source(&registry(), src) {
            Ok(_) => panic!("fixture unexpectedly compiled: {src:?}"),
            Err(d) => {
                let rendered = d.render(src);
                // The CLI prints `file:` + this rendering; it must carry a
                // line:col prefix and the stage name.
                assert!(
                    rendered.contains(':'),
                    "unlocated diagnostic for {src:?}: {rendered}"
                );
            }
        }
    }
}

/// The one valid-program fixture: the pipeline accepts it end to end
/// (guards against the property tests passing vacuously).
#[test]
fn good_program_still_compiles() {
    let prog = compile_source(&registry(), GOOD).expect("GOOD compiles");
    assert_eq!(prog.source_name(), "ints");
}
