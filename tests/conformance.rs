//! The backend conformance suite, instantiated for every backend.
//!
//! One contract (`skipper::conformance`), four execution strategies: the
//! declarative specification, scoped threads, the persistent
//! work-stealing pool and the simulated Transputer machine. `SimBackend`
//! runs the **full** case matrix — all skeletons plus `then`,
//! `itermem(scm)`, `itermem(df)`, `itermem(tf)`, nested loops and
//! then-inside-loop, over empty/singleton/regular/skewed inputs — with no
//! carve-outs, in both farm PNT shapes (point-to-point star and Fig. 1's
//! explicit-router ring). CI runs this file with `SKIPPER_WORKERS=1` and
//! `=4` so degenerate single-worker scheduling and a fixed multi-worker
//! configuration are both exercised on every push (`Workers::FromEnv`
//! feeds the kit's worker-count sweep and sizes `PoolBackend::new`).

use skipper::conformance::{
    assert_backend_conforms, assert_receipts_match, assert_serving_conforms, worker_counts,
};
use skipper::{HostBackend, PoolBackend, SeqBackend, ShardBackend, ThreadBackend, Workers};
use skipper_exec::SimBackend;
use skipper_net::FarmShape;

#[test]
fn seq_backend_conforms() {
    assert_backend_conforms(&SeqBackend);
}

#[test]
fn thread_backend_conforms() {
    assert_backend_conforms(&ThreadBackend::new());
}

#[test]
fn thread_backend_with_worker_override_conforms() {
    assert_backend_conforms(&ThreadBackend::configured(Workers::exact(2)));
}

#[test]
fn pool_backend_conforms() {
    assert_backend_conforms(&PoolBackend::new());
}

#[test]
fn pool_backend_single_thread_conforms() {
    assert_backend_conforms(&PoolBackend::configured(Workers::exact(1)));
}

#[test]
fn pool_backend_clone_shares_the_pool_and_conforms() {
    let backend = PoolBackend::new();
    let clone = backend.clone();
    assert_backend_conforms(&backend);
    assert_backend_conforms(&clone);
}

#[test]
fn pool_backend_serving_conforms() {
    // The serving axis: concurrent multiplexed streams over the shared
    // pool must match sequential prepared goldens, stream for stream.
    assert_serving_conforms(&PoolBackend::new());
}

#[test]
fn pool_backend_single_thread_serving_conforms() {
    assert_serving_conforms(&PoolBackend::configured(Workers::exact(1)));
}

#[test]
fn sim_backend_conforms() {
    assert_backend_conforms(&SimBackend::ring(4));
}

#[test]
fn sim_backend_single_processor_conforms() {
    assert_backend_conforms(&SimBackend::ring(1));
}

#[test]
fn sim_backend_ring_farms_conform() {
    // Fig. 1's explicit-router farm PNT, relayed at application level,
    // must satisfy the very same contract as the star expansion —
    // including the degenerate single-worker-processor chain (ring(2)).
    for nprocs in [2usize, 4] {
        assert_backend_conforms(&SimBackend::ring(nprocs).with_farm_shape(FarmShape::Ring));
    }
}

#[test]
fn shard_backend_conforms() {
    assert_backend_conforms(&ShardBackend::new(2));
}

#[test]
fn shard_backend_odd_shard_count_conforms() {
    // Three shards never divide the case inputs evenly: the remainder
    // routing is part of the contract.
    assert_backend_conforms(&ShardBackend::new(3));
}

#[test]
fn shard_backend_single_thread_pools_conform() {
    assert_backend_conforms(&ShardBackend::configured(2, Workers::exact(1)));
}

#[test]
fn host_backend_selector_conforms_for_every_choice() {
    for name in ["seq", "thread", "pool", "shard"] {
        let backend: HostBackend = name.parse().expect("known host backend");
        assert_backend_conforms(&backend);
    }
}

// The receipt axis: equivalent runs on different engines must produce
// *equal* `RunReceipt`s — same canonical input hash, same canonical
// trace hash, same output hash — across the full case/input/worker
// matrix. This is the run contract the distributed backends are held
// to (the worker-process half lives in `crates/bench/tests/`, where
// cargo exposes the worker binary).

#[test]
fn seq_and_thread_receipts_match() {
    assert_receipts_match(&SeqBackend, &ThreadBackend::new());
}

#[test]
fn pool_and_seq_receipts_match() {
    assert_receipts_match(&SeqBackend, &PoolBackend::new());
}

#[test]
fn pool_and_shard_receipts_match() {
    assert_receipts_match(&PoolBackend::new(), &ShardBackend::new(2));
}

#[test]
fn shard_counts_do_not_change_receipts() {
    assert_receipts_match(&ShardBackend::new(2), &ShardBackend::new(5));
}

#[test]
fn worker_counts_include_the_environment_override() {
    // Whatever SKIPPER_WORKERS resolves to (the env var in CI, the host
    // default locally), the sweep must include it alongside 1.
    let counts = worker_counts();
    assert!(counts.contains(&1));
    assert!(counts.contains(&Workers::FromEnv.resolve_or_default().get()));
}
