//! Property-based tests of the core invariants.
//!
//! - the parallel skeletons agree with their declarative specifications
//!   under the paper's side conditions (commutative-associative folds);
//! - random skeleton compositions (bounded depth) lower through the full
//!   SynDEx/transvision pipeline and agree with sequential emulation;
//! - the union-find substrate is a proper equivalence relation;
//! - routing paths over every topology are contiguous and shortest-ish;
//! - AAA schedules respect dataflow precedence on random DAGs.

use proptest::prelude::*;
use skipper::{df, itermem, pure, scm, tf, Compose};
use skipper::{Backend, Df, Scm, SeqBackend, Tf, ThreadBackend};
use skipper_exec::SimBackend;
use skipper_net::dtype::DataType;
use skipper_net::graph::{NodeKind, ProcessNetwork};
use skipper_net::FarmShape;
use skipper_syndex::schedule::{schedule_with, Strategy};
use skipper_syndex::Architecture;
use skipper_vision::label::DisjointSets;
use std::collections::HashMap;
use transvision::topology::{ProcId, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// df: parallel == sequential for a commutative-associative fold.
    #[test]
    fn df_par_equals_seq(xs in prop::collection::vec(0u64..1000, 0..200), workers in 1usize..8) {
        let farm = Df::new(workers, |x: &u64| x.wrapping_mul(31) ^ 7, |z: u64, y| z.wrapping_add(y), 0u64);
        prop_assert_eq!(
            ThreadBackend::new().run(&farm, &xs[..]),
            SeqBackend.run(&farm, &xs[..])
        );
    }

    /// df ordered: parallel == sequential even for non-commutative folds.
    #[test]
    fn df_ordered_equals_seq_non_commutative(
        xs in prop::collection::vec(0u32..100, 0..64),
        workers in 1usize..6,
    ) {
        let farm = Df::new(
            workers,
            |x: &u32| x.to_string(),
            |z: String, y: String| z + &y + ",",
            String::new(),
        );
        prop_assert_eq!(farm.run_par_ordered(&xs), SeqBackend.run(&farm, &xs[..]));
    }

    /// scm: parallel == sequential always (merge sees fragment order).
    #[test]
    fn scm_par_equals_seq(xs in prop::collection::vec(0i64..1000, 1..200), workers in 1usize..8) {
        let scm = Scm::new(
            workers,
            |v: &Vec<i64>, n| v.chunks(v.len().div_ceil(n)).map(<[i64]>::to_vec).collect(),
            |c: Vec<i64>| c.into_iter().map(|x| x - 3).collect::<Vec<i64>>(),
            |ps: Vec<Vec<i64>>| ps.concat(),
        );
        prop_assert_eq!(
            ThreadBackend::new().run(&scm, &xs),
            SeqBackend.run(&scm, &xs)
        );
    }

    /// tf: parallel == sequential for commutative folds over generated work.
    #[test]
    fn tf_par_equals_seq(roots in prop::collection::vec(1u64..64, 1..8), workers in 1usize..6) {
        let worker = |t: u64| {
            if t >= 4 {
                (vec![t / 2, t / 3], Some(t))
            } else {
                (vec![], Some(t))
            }
        };
        let tf = Tf::new(workers, worker, |z: u64, o| z.wrapping_add(o), 0u64);
        prop_assert_eq!(
            ThreadBackend::new().run(&tf, roots.clone()),
            SeqBackend.run(&tf, roots)
        );
    }

    /// Random skeleton compositions, differential-tested on the simulated
    /// machine: every generated program (bounded depth: a skeleton, an
    /// optional `then` stage, an optional `itermem` wrapper, and one
    /// doubly-nested loop shape) must lower through PNT expansion →
    /// SynDEx → macro-code → transvision and reproduce the `SeqBackend`
    /// golden result, on both farm PNT shapes.
    #[test]
    fn random_compositions_on_sim_match_seq(
        shape in 0usize..7,
        workers in 1usize..4,
        nprocs in 1usize..5,
        ring_pick in 0usize..2,
        xs in prop::collection::vec(-30i64..30, 0..10),
        mul in 1i64..4,
    ) {
        let backend = if ring_pick == 1 {
            SimBackend::ring(nprocs).with_farm_shape(FarmShape::Ring)
        } else {
            SimBackend::ring(nprocs)
        };
        // Frames for the loop shapes: chunk xs into small bursts
        // (including an empty one so empty frames stay covered).
        let mut frames: Vec<Vec<i64>> = xs.chunks(3).map(<[i64]>::to_vec).collect();
        frames.push(Vec::new());
        match shape {
            0 => {
                let prog = df(workers, move |x: &i64| x * mul + 1, |z: i64, y| z + y, 7i64);
                prop_assert_eq!(
                    backend.run(&prog, &xs[..]).expect("df lowers"),
                    SeqBackend.run(&prog, &xs[..])
                );
            }
            1 => {
                // Round-robin split: always exactly `workers` fragments.
                let prog = scm(
                    workers,
                    |v: &Vec<i64>, n| {
                        let mut out = vec![Vec::new(); n];
                        for (i, &x) in v.iter().enumerate() {
                            out[i % n].push(x);
                        }
                        out
                    },
                    move |chunk: Vec<i64>| chunk.iter().map(|x| x * mul).sum::<i64>(),
                    |parts: Vec<i64>| parts.iter().sum::<i64>(),
                );
                prop_assert_eq!(
                    backend.run(&prog, &xs).expect("scm lowers"),
                    SeqBackend.run(&prog, &xs)
                );
            }
            2 => {
                let prog = tf(
                    workers,
                    |t: i64| {
                        let t = t.abs();
                        if t > 8 { (vec![t / 2, t / 3], Some(t)) } else { (vec![], Some(t)) }
                    },
                    |z: i64, o| z.wrapping_add(o),
                    0i64,
                );
                prop_assert_eq!(
                    backend.run(&prog, xs.clone()).expect("tf lowers"),
                    SeqBackend.run(&prog, xs.clone())
                );
            }
            3 => {
                let prog = df(workers, |x: &i64| x - 2, |z: i64, y| z + y, 0i64)
                    .then(pure(move |total: i64| (total, total * mul)));
                prop_assert_eq!(
                    backend.run(&prog, &xs[..]).expect("then lowers"),
                    SeqBackend.run(&prog, &xs[..])
                );
            }
            4 => {
                let prog = itermem(
                    df(workers, move |x: &i64| x * mul, |z: i64, y| z + y, 0i64),
                    11i64,
                );
                prop_assert_eq!(
                    backend.run(&prog, frames.clone()).expect("itermem(df) lowers"),
                    SeqBackend.run(&prog, frames.clone())
                );
            }
            5 => {
                let prog = itermem(
                    tf(
                        workers,
                        |t: i64| {
                            let t = t.abs();
                            if t > 8 { (vec![t / 2], Some(t)) } else { (vec![], Some(t)) }
                        },
                        |z: i64, o| z.wrapping_add(o),
                        0i64,
                    ),
                    3i64,
                );
                prop_assert_eq!(
                    backend.run(&prog, frames.clone()).expect("itermem(tf) lowers"),
                    SeqBackend.run(&prog, frames.clone())
                );
            }
            _ => {
                // Depth 2: a loop nested inside a loop, over bursts.
                let body = scm(
                    workers,
                    |t: &(i64, i64), n| {
                        (0..n as i64).map(|k| (t.0 + k, t.1)).collect::<Vec<_>>()
                    },
                    move |(a, b): (i64, i64)| a * mul + b,
                    |parts: Vec<i64>| {
                        let s: i64 = parts.iter().sum();
                        (s, s + 1)
                    },
                );
                let prog = itermem(itermem(body, 0i64), 2i64);
                let bursts: Vec<Vec<i64>> = frames.clone();
                prop_assert_eq!(
                    backend.run(&prog, bursts.clone()).expect("nested loop lowers"),
                    SeqBackend.run(&prog, bursts)
                );
            }
        }
    }

    /// Union-find maintains an equivalence relation under arbitrary unions.
    #[test]
    fn disjoint_sets_equivalence(
        n in 2usize..40,
        unions in prop::collection::vec((0usize..40, 0usize..40), 0..60),
    ) {
        let mut ds = DisjointSets::new(n);
        let mut naive: Vec<usize> = (0..n).collect(); // naive set ids
        for &(a, b) in &unions {
            let (a, b) = (a % n, b % n);
            ds.union(a, b);
            let (ra, rb) = (naive[a], naive[b]);
            if ra != rb {
                for x in naive.iter_mut() {
                    if *x == rb { *x = ra; }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(ds.same(i, j), naive[i] == naive[j], "{} {}", i, j);
            }
        }
    }

    /// Shortest-path routes are contiguous and within the diameter, on all
    /// topology families.
    #[test]
    fn topology_paths_are_contiguous(kind in 0usize..5, size in 2usize..9, a in 0usize..9, b in 0usize..9) {
        let topo = match kind {
            0 => Topology::ring(size),
            1 => Topology::chain(size),
            2 => Topology::star(size),
            3 => Topology::full(size),
            _ => Topology::mesh(size.clamp(1, 4), 2),
        };
        let n = topo.len();
        let (src, dst) = (ProcId(a % n), ProcId(b % n));
        let path = topo.path(src, dst).unwrap();
        let mut cur = src;
        for l in &path {
            let (from, to) = topo.dlink(*l);
            prop_assert_eq!(from, cur);
            cur = to;
        }
        prop_assert_eq!(cur, dst);
        prop_assert!(path.len() <= topo.diameter());
    }

    /// AAA schedules respect precedence on random layered DAGs, under all
    /// strategies.
    #[test]
    fn schedules_respect_precedence(
        seed in 0u64..500,
        nprocs in 2usize..6,
        strategy_pick in 0usize..3,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = ProcessNetwork::new("prop");
        let mut prev: Vec<skipper_net::graph::NodeId> = Vec::new();
        for l in 0..rng.gen_range(2..5) {
            let mut cur = Vec::new();
            for w in 0..rng.gen_range(1..4) {
                let id = net.add_node(NodeKind::UserFn(format!("f{l}_{w}")), format!("f{l}_{w}"));
                net.set_cost_hint(id, rng.gen_range(1..1_000_000));
                for &p in &prev {
                    if rng.gen_bool(0.5) {
                        net.add_data_edge(p, 0, id, 0, DataType::Int).unwrap();
                    }
                }
                cur.push(id);
            }
            prev = cur;
        }
        let strategy = [Strategy::MinFinish, Strategy::RoundRobin, Strategy::SingleProc][strategy_pick];
        let arch = Architecture::ring_t9000(nprocs);
        let s = schedule_with(&net, &arch, &HashMap::new(), strategy).unwrap();
        for e in net.edges() {
            prop_assert!(
                s.start_ns[e.to.0] >= s.finish_ns[e.from.0],
                "consumer before producer under {:?}", strategy
            );
        }
        prop_assert_eq!(s.mapping.len(), net.nodes().len());
    }
}
