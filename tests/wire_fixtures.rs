//! Golden fixtures and property tests for the canonical wire format.
//!
//! The encoding is a **network contract**: a master and a worker built
//! from different checkouts must agree on every byte. The committed
//! fixtures in `tests/fixtures/wire/` pin the bytes of version 1 —
//! any codec change that shifts them is a drift this file catches, and
//! the correct response is to bump [`skipper::wire::VERSION`], not to
//! regenerate quietly. (Regeneration, for a deliberate version bump:
//! `REGEN_WIRE_FIXTURES=1 cargo test --test wire_fixtures`.)
//!
//! Negative fixtures pin the rejection behaviour: malformed documents
//! must fail to decode with exactly the documented error message.

use proptest::prelude::*;
use skipper::wire::{canonical_bytes, decode_document, encode_document, WireValue};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/wire")
}

/// The golden corpus: every tag, nesting, and the edge encodings
/// (negative ints, non-finite floats via bit patterns, empty
/// collections, multi-byte UTF-8).
fn golden_values() -> Vec<(&'static str, WireValue)> {
    vec![
        ("unit", WireValue::Unit),
        ("bool_true", WireValue::Bool(true)),
        ("int_negative", WireValue::Int(-42)),
        ("int_extremes", {
            WireValue::List(vec![
                WireValue::Int(i64::MIN),
                WireValue::Int(0),
                WireValue::Int(i64::MAX),
            ])
        }),
        ("float_pi", WireValue::Float(std::f64::consts::PI)),
        ("str_utf8", WireValue::Str("héllo, wörld — ∀x".to_string())),
        ("bytes", WireValue::Bytes(vec![0x00, 0xff, 0x7f, 0x80])),
        ("empty_list", WireValue::List(vec![])),
        (
            "nested",
            WireValue::Tuple(vec![
                WireValue::Str("job".to_string()),
                WireValue::Int(7),
                WireValue::List(vec![
                    WireValue::Tuple(vec![WireValue::Bool(false), WireValue::Unit]),
                    WireValue::Tuple(vec![WireValue::Bool(true), WireValue::Unit]),
                ]),
            ]),
        ),
    ]
}

/// The negative corpus: raw document bytes, each with the exact
/// `Display` string its rejection must carry.
fn negative_fixtures() -> Vec<(&'static str, Vec<u8>, &'static str)> {
    let doc = |v: &WireValue| encode_document(v);
    vec![
        (
            "bad_magic",
            {
                let mut b = doc(&WireValue::Unit);
                b[..4].copy_from_slice(b"SKIQ");
                b
            },
            "bad magic bytes 53 4b 49 51 (expected \"SKIP\")",
        ),
        (
            "bad_version",
            {
                let mut b = doc(&WireValue::Unit);
                b[4..6].copy_from_slice(&99u16.to_le_bytes());
                b
            },
            "wire version mismatch: got 99, want 1",
        ),
        (
            "bad_tag",
            {
                let mut b = doc(&WireValue::Unit);
                *b.last_mut().unwrap() = 0x7f;
                b
            },
            "unknown wire tag 0x7f",
        ),
        (
            "truncated_int",
            {
                let mut b = doc(&WireValue::Int(0x0102_0304));
                b.truncate(b.len() - 4);
                b
            },
            "truncated document: need 4 more byte(s), have 4",
        ),
        (
            "overlong_list",
            {
                // A list claiming 1000 elements with none present.
                let mut b = doc(&WireValue::List(vec![]));
                let n = b.len();
                b[n - 4..].copy_from_slice(&1000u32.to_le_bytes());
                b
            },
            "implausible length 1000: exceeds remaining input",
        ),
        (
            "hostile_list_len",
            {
                // A list whose declared count (8) *passes* the
                // plausibility check — 8 bytes do remain — but those
                // bytes hold one truncated int (tag 0x03 + 7 of its 8
                // payload bytes), not 8 elements. The decoder must cap
                // its pre-allocation to the input it actually has and
                // fail cleanly on the first element.
                let mut b = doc(&WireValue::List(vec![]));
                let n = b.len();
                b[n - 4..].copy_from_slice(&8u32.to_le_bytes());
                b.push(0x03); // TAG_INT
                b.extend_from_slice(&[0u8; 7]);
                b
            },
            "truncated document: need 1 more byte(s), have 7",
        ),
        (
            "trailing_garbage",
            {
                let mut b = doc(&WireValue::Bool(true));
                b.push(0xaa);
                b
            },
            "trailing garbage: 1 byte(s) after the document",
        ),
    ]
}

fn regen() -> bool {
    std::env::var_os("REGEN_WIRE_FIXTURES").is_some_and(|v| v == "1")
}

#[test]
fn golden_fixtures_have_not_drifted() {
    let dir = fixture_dir();
    for (name, value) in golden_values() {
        let path = dir.join(format!("{name}.bin"));
        let encoded = encode_document(&value);
        if regen() {
            std::fs::create_dir_all(&dir).expect("create fixture dir");
            std::fs::write(&path, &encoded).expect("write fixture");
            continue;
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
        assert_eq!(
            encoded, committed,
            "`{name}` encodes differently from the committed v1 bytes — \
             this is a wire format change; bump skipper::wire::VERSION \
             (then regenerate with REGEN_WIRE_FIXTURES=1)"
        );
        // And the committed bytes decode back to the very value.
        assert_eq!(decode_document(&committed).expect("golden decodes"), value);
    }
}

#[test]
fn negative_fixtures_are_rejected_with_the_pinned_errors() {
    let dir = fixture_dir();
    for (name, bytes, message) in negative_fixtures() {
        let path = dir.join(format!("{name}.bin"));
        if regen() {
            std::fs::create_dir_all(&dir).expect("create fixture dir");
            std::fs::write(&path, &bytes).expect("write fixture");
        }
        let committed = std::fs::read(&path)
            .unwrap_or_else(|e| panic!("missing negative fixture {}: {e}", path.display()));
        assert_eq!(committed, bytes, "`{name}` fixture bytes drifted");
        let err = decode_document(&committed).expect_err("a negative fixture must fail to decode");
        assert_eq!(err.to_string(), message, "`{name}` rejection message");
    }
}

fn next(words: &[u64], pos: &mut usize) -> u64 {
    let w = words.get(*pos).copied().unwrap_or(7);
    *pos += 1;
    w
}

/// Derives one `WireValue` from a stream of random words. The proptest
/// shim has no recursive/`prop_map` strategies, so the structure is
/// computed in plain code from drawn integers: every tag is reachable,
/// nesting is bounded by `depth`, floats stay finite (and never `-0.0`)
/// so value equality is structural.
fn build_value(words: &[u64], pos: &mut usize, depth: usize) -> WireValue {
    let kinds = if depth == 0 { 6 } else { 8 };
    match next(words, pos) % kinds {
        0 => WireValue::Unit,
        1 => WireValue::Bool(next(words, pos) % 2 == 1),
        2 => WireValue::Int(next(words, pos) as i64),
        3 => WireValue::Float(((next(words, pos) % 2_000_001) as f64) - 1_000_000.0),
        4 => {
            let choices = ["", "a", "héllo", "wörld — ∀x", "skip"];
            WireValue::Str(choices[next(words, pos) as usize % choices.len()].to_string())
        }
        5 => {
            let n = (next(words, pos) % 9) as usize;
            WireValue::Bytes((0..n).map(|_| next(words, pos) as u8).collect())
        }
        6 => {
            let n = (next(words, pos) % 5) as usize;
            WireValue::List((0..n).map(|_| build_value(words, pos, depth - 1)).collect())
        }
        _ => {
            let n = (next(words, pos) % 5) as usize;
            WireValue::Tuple((0..n).map(|_| build_value(words, pos, depth - 1)).collect())
        }
    }
}

fn arb_value(words: &[u64]) -> WireValue {
    let mut pos = 0;
    build_value(words, &mut pos, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Round trip: decode(encode(v)) == v for every value shape.
    #[test]
    fn documents_round_trip(words in prop::collection::vec(0u64..u64::MAX, 1..96)) {
        let v = arb_value(&words);
        let bytes = encode_document(&v);
        prop_assert_eq!(decode_document(&bytes).expect("round trip decodes"), v);
    }

    /// Equal canonical bytes ⇔ equal values — the injectivity the
    /// receipt hashes rely on (and determinism: same value, same bytes).
    #[test]
    fn canonical_bytes_separate_distinct_values(
        a_words in prop::collection::vec(0u64..u64::MAX, 1..48),
        b_words in prop::collection::vec(0u64..u64::MAX, 1..48),
    ) {
        let (a, b) = (arb_value(&a_words), arb_value(&b_words));
        prop_assert_eq!(canonical_bytes(&a) == canonical_bytes(&b), a == b);
        prop_assert_eq!(canonical_bytes(&a), canonical_bytes(&a.clone()));
    }

    /// Truncating any strict prefix never decodes successfully — a cut
    /// pipe cannot be mistaken for a complete document.
    #[test]
    fn strict_prefixes_never_decode(
        words in prop::collection::vec(0u64..u64::MAX, 1..64),
        cut in 0usize..4096,
    ) {
        let bytes = encode_document(&arb_value(&words));
        let cut = cut % bytes.len();
        prop_assert!(decode_document(&bytes[..cut]).is_err());
    }
}
