//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a std-only shim exposing the proptest API surface the SKiPPER
//! test-suite uses: the `proptest!` macro with `#![proptest_config(..)]`,
//! `ProptestConfig::with_cases`, integer-range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from real proptest, by design:
//!
//! - inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test name), so CI failures reproduce exactly;
//! - there is **no shrinking**: a failing case reports the case number
//!   and message but not a minimised input;
//! - only the strategy combinators listed above exist.

use rand::rngs::StdRng;

/// Test-case configuration and failure types.
pub mod test_runner {
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config`: how many random cases
    /// each property runs.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// A property-violation report produced by `prop_assert!`-style macros.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG for drawing test inputs: the per-test stream is a
    /// function of the test name only.
    #[derive(Debug)]
    pub struct TestRng {
        inner: super::StdRng,
    }

    impl TestRng {
        /// Seeds the stream from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: super::StdRng::seed_from_u64(h),
            }
        }

        pub(crate) fn rng(&mut self) -> &mut super::StdRng {
            &mut self.inner
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::{Rng, SampleRange};
    use std::ops::Range;

    /// A source of random values for one `proptest!` argument.
    ///
    /// Unlike real proptest there is no value tree: `sample` draws a
    /// plain value and nothing shrinks.
    pub trait Strategy {
        /// The values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Produces a `T` verbatim for every case (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`super::prop::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.len.is_empty() {
                self.len.start
            } else {
                self.len.clone().sample_from(rng.rng())
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Strategy combinators namespaced as in real proptest (`prop::...`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// A `Vec` whose length is drawn from `len` and whose elements are
        /// drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut __proptest_rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __proptest_case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strategy),
                        &mut __proptest_rng,
                    );
                )+
                let __proptest_result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __proptest_result {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        __proptest_case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Integer-range strategies respect their bounds.
        #[test]
        fn int_ranges_in_bounds(x in 0u64..100, y in 1usize..8) {
            prop_assert!(x < 100);
            prop_assert!((1..8).contains(&y), "y out of range: {}", y);
        }

        /// Vec strategies respect element and length bounds.
        #[test]
        fn vec_strategy_in_bounds(xs in prop::collection::vec(0i64..10, 0..20)) {
            prop_assert!(xs.len() < 20);
            for &x in &xs {
                prop_assert!((0..10).contains(&x));
            }
        }

        /// Tuple strategies sample componentwise.
        #[test]
        fn tuple_strategy(pairs in prop::collection::vec((0usize..4, 0usize..4), 1..10)) {
            for &(a, b) in &pairs {
                prop_assert!(a < 4 && b < 4);
            }
            prop_assert_eq!(pairs.is_empty(), false);
        }
    }

    #[test]
    fn deterministic_inputs_per_test_name() {
        use crate::strategy::Strategy;
        let strat = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::deterministic("some_test");
        let mut b = crate::test_runner::TestRng::deterministic("some_test");
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
