//! Offline stand-in for the `futures` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a std-only shim exposing the small `futures` API surface the
//! SKiPPER serving layer uses:
//!
//! - [`executor::block_on`] — drive one future to completion on the
//!   calling thread (park/unpark waker);
//! - [`executor::LocalPool`] — a single-threaded executor for `!Send`
//!   futures with cooperative [`executor::LocalPool::run_until_stalled`]
//!   scheduling, the event-loop substrate of `skipper::serve`;
//! - [`channel::oneshot`] — a one-value channel whose receiver is a
//!   `Future`, used to hand a pool job's result back to the stream task
//!   that requested it.
//!
//! Everything is built on `std::task` (`Waker`, `Wake`, `Context`) and
//! `std::future`; there is no reactor and no timers — the serving event
//! loop does its own waiting on channel timeouts. Divergences from the
//! real crate: `LocalPool` exposes `spawn` directly (no separate
//! `LocalSpawner` handle), and `run_until_stalled` returns the number of
//! tasks completed during the call.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Executors: [`block_on`](executor::block_on) for one future on the
/// current thread, [`LocalPool`](executor::LocalPool) for a cooperative
/// set of `!Send` futures.
pub mod executor {
    use super::*;

    /// Unparks its thread on wake — the `block_on` waker.
    struct ThreadWaker {
        thread: std::thread::Thread,
    }

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.thread.unpark();
        }
    }

    /// Runs `fut` to completion on the calling thread, parking between
    /// polls until the future's waker fires.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let mut fut = std::pin::pin!(fut);
        let waker = Waker::from(Arc::new(ThreadWaker {
            thread: std::thread::current(),
        }));
        let mut cx = Context::from_waker(&waker);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// Sets a per-task flag on wake; the owning [`LocalPool`] polls every
    /// flagged task on its next [`run_until_stalled`]
    /// (`LocalPool::run_until_stalled`) pass. Thread-safe, so wakes may
    /// arrive from other threads (e.g. a pool job completing a
    /// [`channel::oneshot`] the task awaits).
    struct FlagWaker {
        woken: AtomicBool,
    }

    impl Wake for FlagWaker {
        fn wake(self: Arc<Self>) {
            self.woken.store(true, Ordering::Release);
        }
    }

    struct Task {
        fut: Pin<Box<dyn Future<Output = ()>>>,
        flag: Arc<FlagWaker>,
        waker: Waker,
    }

    /// A single-threaded executor for `!Send` futures.
    ///
    /// Tasks are spawned with [`spawn`](LocalPool::spawn) and driven by
    /// [`run_until_stalled`](LocalPool::run_until_stalled), which polls
    /// until no task can make further progress. The pool never blocks:
    /// interleaving waits (channel timeouts, admission pacing) is the
    /// caller's event loop's job.
    #[derive(Default)]
    pub struct LocalPool {
        tasks: Vec<Task>,
    }

    impl LocalPool {
        /// An executor with no tasks.
        pub fn new() -> Self {
            LocalPool::default()
        }

        /// Adds a task; it is polled first on the next
        /// [`run_until_stalled`](LocalPool::run_until_stalled) call.
        pub fn spawn(&mut self, fut: impl Future<Output = ()> + 'static) {
            let flag = Arc::new(FlagWaker {
                woken: AtomicBool::new(true),
            });
            let waker = Waker::from(Arc::clone(&flag));
            self.tasks.push(Task {
                fut: Box::pin(fut),
                flag,
                waker,
            });
        }

        /// Number of tasks still running.
        pub fn pending_tasks(&self) -> usize {
            self.tasks.len()
        }

        /// Polls every woken task, repeatedly, until no task is woken
        /// (every remaining task is waiting on an external wake). Returns
        /// the number of tasks that ran to completion during this call.
        pub fn run_until_stalled(&mut self) -> usize {
            let mut completed = 0;
            loop {
                let mut progressed = false;
                let mut i = 0;
                while i < self.tasks.len() {
                    if !self.tasks[i].flag.woken.swap(false, Ordering::AcqRel) {
                        i += 1;
                        continue;
                    }
                    progressed = true;
                    let task = &mut self.tasks[i];
                    let mut cx = Context::from_waker(&task.waker);
                    match task.fut.as_mut().poll(&mut cx) {
                        Poll::Ready(()) => {
                            completed += 1;
                            // Ordered removal: tasks are always polled in
                            // spawn order, which callers building
                            // deterministic schedules (the serving event
                            // loop's batch traces) rely on.
                            self.tasks.remove(i);
                        }
                        Poll::Pending => i += 1,
                    }
                }
                if !progressed {
                    return completed;
                }
            }
        }
    }

    impl std::fmt::Debug for LocalPool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("LocalPool")
                .field("tasks", &self.tasks.len())
                .finish()
        }
    }
}

/// Channels whose receiving half is a `Future`.
pub mod channel {
    /// A channel for sending exactly one value, mirroring
    /// `futures::channel::oneshot`.
    pub mod oneshot {
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        /// The sender was dropped without sending; the receiver will
        /// never get a value.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Canceled;

        impl std::fmt::Display for Canceled {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "oneshot canceled")
            }
        }

        impl std::error::Error for Canceled {}

        struct Inner<T> {
            value: Option<T>,
            /// True once either half is gone (sender consumed/dropped or
            /// receiver dropped).
            closed: bool,
            waker: Option<Waker>,
        }

        /// The sending half: consumes itself on [`send`](Sender::send).
        pub struct Sender<T> {
            inner: Arc<Mutex<Inner<T>>>,
        }

        /// The receiving half: a `Future` resolving to the sent value or
        /// [`Canceled`].
        pub struct Receiver<T> {
            inner: Arc<Mutex<Inner<T>>>,
        }

        /// Creates a sender/receiver pair.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let inner = Arc::new(Mutex::new(Inner {
                value: None,
                closed: false,
                waker: None,
            }));
            (
                Sender {
                    inner: Arc::clone(&inner),
                },
                Receiver { inner },
            )
        }

        impl<T> Sender<T> {
            /// Sends `value`, waking the receiver. Fails with the value
            /// if the receiver was dropped.
            pub fn send(self, value: T) -> Result<(), T> {
                let mut inner = self.inner.lock().expect("oneshot poisoned");
                if inner.closed {
                    return Err(value);
                }
                inner.value = Some(value);
                inner.closed = true;
                if let Some(waker) = inner.waker.take() {
                    drop(inner);
                    waker.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut inner = self.inner.lock().expect("oneshot poisoned");
                if !inner.closed {
                    // Dropped without sending: cancel the receiver.
                    inner.closed = true;
                    if let Some(waker) = inner.waker.take() {
                        drop(inner);
                        waker.wake();
                    }
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let mut inner = self.inner.lock().expect("oneshot poisoned");
                inner.closed = true;
                inner.value = None;
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, Canceled>;

            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut inner = self.inner.lock().expect("oneshot poisoned");
                if let Some(value) = inner.value.take() {
                    return Poll::Ready(Ok(value));
                }
                if inner.closed {
                    return Poll::Ready(Err(Canceled));
                }
                inner.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::oneshot;
    use super::executor::{block_on, LocalPool};
    use std::cell::RefCell;
    use std::future::poll_fn;
    use std::rc::Rc;
    use std::task::Poll;

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 6 * 7 }), 42);
    }

    #[test]
    fn block_on_waits_for_a_cross_thread_wake() {
        let (tx, rx) = oneshot::channel::<String>();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send("ping".to_string()).unwrap();
        });
        assert_eq!(block_on(rx), Ok("ping".to_string()));
        handle.join().unwrap();
    }

    #[test]
    fn oneshot_resolves_when_sent_before_poll() {
        let (tx, rx) = oneshot::channel();
        tx.send(7u32).unwrap();
        assert_eq!(block_on(rx), Ok(7));
    }

    #[test]
    fn oneshot_cancels_when_sender_drops() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(tx);
        assert_eq!(block_on(rx), Err(oneshot::Canceled));
    }

    #[test]
    fn oneshot_send_fails_after_receiver_drops() {
        let (tx, rx) = oneshot::channel::<u32>();
        drop(rx);
        assert_eq!(tx.send(9), Err(9));
    }

    #[test]
    fn oneshot_second_poll_after_ready_reports_canceled() {
        // Divergence from real `futures` (which panics on poll-after-
        // ready): the shim's receiver stays safe to re-poll and settles
        // on `Canceled` once the value has been taken. Pinned so event-
        // loop code may treat a spurious extra poll as a non-event.
        use std::future::Future;
        use std::pin::Pin;
        let (tx, mut rx) = oneshot::channel();
        tx.send(3u8).unwrap();
        let first = block_on(poll_fn(|cx| Pin::new(&mut rx).poll(cx)));
        assert_eq!(first, Ok(3));
        let second = block_on(poll_fn(|cx| Pin::new(&mut rx).poll(cx)));
        assert_eq!(second, Err(oneshot::Canceled));
    }

    #[test]
    fn sender_drop_wakes_a_stalled_receiver_task() {
        // The cancel-wake path: the receiver has already registered its
        // waker (unlike the drop-before-poll case), so `Sender::drop`
        // must fire it or the task stalls forever.
        let (tx, rx) = oneshot::channel::<u8>();
        let got = Rc::new(RefCell::new(None));
        let mut pool = LocalPool::new();
        {
            let got = Rc::clone(&got);
            pool.spawn(async move {
                *got.borrow_mut() = Some(rx.await);
            });
        }
        assert_eq!(pool.run_until_stalled(), 0, "receiver must stall");
        drop(tx);
        assert_eq!(pool.run_until_stalled(), 1, "cancellation must wake");
        assert_eq!(*got.borrow(), Some(Err(oneshot::Canceled)));
    }

    #[test]
    fn an_unclaimed_value_is_dropped_with_the_receiver() {
        // A sent-but-never-polled value must not leak in the shared
        // channel state once the receiver is gone.
        let (tx, rx) = oneshot::channel::<Rc<()>>();
        let probe = Rc::new(());
        tx.send(Rc::clone(&probe)).unwrap();
        assert_eq!(Rc::strong_count(&probe), 2);
        drop(rx);
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn local_pool_runs_spawned_tasks_to_completion() {
        let hits = Rc::new(RefCell::new(Vec::new()));
        let mut pool = LocalPool::new();
        for i in 0..3 {
            let hits = Rc::clone(&hits);
            pool.spawn(async move {
                hits.borrow_mut().push(i);
            });
        }
        assert_eq!(pool.pending_tasks(), 3);
        assert_eq!(pool.run_until_stalled(), 3);
        assert_eq!(pool.pending_tasks(), 0);
        assert_eq!(*hits.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn local_pool_stalls_on_pending_and_resumes_on_wake() {
        // Task A awaits a oneshot; task B sends on it from a later
        // `run_until_stalled` pass — the classic stall/resume cycle the
        // serving event loop is built on.
        let (tx, rx) = oneshot::channel::<u8>();
        let got = Rc::new(RefCell::new(None));
        let mut pool = LocalPool::new();
        {
            let got = Rc::clone(&got);
            pool.spawn(async move {
                *got.borrow_mut() = Some(rx.await.unwrap());
            });
        }
        assert_eq!(pool.run_until_stalled(), 0, "receiver must stall");
        assert_eq!(pool.pending_tasks(), 1);
        tx.send(5).unwrap();
        assert_eq!(pool.run_until_stalled(), 1);
        assert_eq!(*got.borrow(), Some(5));
    }

    #[test]
    fn local_pool_interleaves_cooperative_tasks() {
        // Two tasks ping-pong through shared state using poll_fn: each
        // wakes itself after progressing, so one run_until_stalled call
        // interleaves them to completion.
        let turn = Rc::new(RefCell::new(0u32));
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut pool = LocalPool::new();
        for me in 0..2u32 {
            let turn = Rc::clone(&turn);
            let log = Rc::clone(&log);
            pool.spawn(async move {
                for _ in 0..3 {
                    poll_fn(|cx| {
                        if *turn.borrow() % 2 == me {
                            let mut t = turn.borrow_mut();
                            log.borrow_mut().push((me, *t));
                            *t += 1;
                            Poll::Ready(())
                        } else {
                            cx.waker().wake_by_ref();
                            Poll::Pending
                        }
                    })
                    .await;
                }
            });
        }
        assert_eq!(pool.run_until_stalled(), 2);
        let log = log.borrow();
        assert_eq!(log.len(), 6);
        // Strict alternation: the turn counter orders every step.
        for (k, &(me, t)) in log.iter().enumerate() {
            assert_eq!(t as usize, k);
            assert_eq!(me as usize, k % 2);
        }
    }

    #[test]
    fn wake_from_another_thread_reaches_a_local_pool_task() {
        let (tx, rx) = oneshot::channel::<u64>();
        let got = Rc::new(RefCell::new(None));
        let mut pool = LocalPool::new();
        {
            let got = Rc::clone(&got);
            pool.spawn(async move {
                *got.borrow_mut() = Some(rx.await.unwrap());
            });
        }
        assert_eq!(pool.run_until_stalled(), 0);
        let handle = std::thread::spawn(move || tx.send(99).unwrap());
        handle.join().unwrap();
        assert_eq!(pool.run_until_stalled(), 1);
        assert_eq!(*got.borrow(), Some(99));
    }
}
