//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a std-only shim exposing exactly the `crossbeam` API surface the
//! SKiPPER crates use: `channel::unbounded`, `thread::scope`/`spawn`, and
//! `utils::Backoff`. Semantics match crossbeam closely enough for the
//! skeleton runtimes; the one documented divergence is that a panicking
//! scoped thread propagates its panic out of [`thread::scope`] (as
//! `std::thread::scope` does) instead of surfacing it as an `Err`.

/// Multi-producer channels, backed by `std::sync::mpsc`.
///
/// Only the unbounded flavour is provided; `Sender` is `Clone` and
/// `Receiver::iter` blocks until every sender is dropped, which is all the
/// farm runtimes rely on.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads, backed by `std::thread::scope`.
pub mod thread {
    pub use std::thread::Result;

    /// A scope handle mirroring `crossbeam::thread::Scope`: spawned
    /// closures receive a `&Scope` so they can spawn further siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope again.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns once all of them have finished.
    ///
    /// Divergence from crossbeam: a panic in a spawned thread resumes on
    /// the caller (so the conventional `.expect("worker panicked")` on the
    /// result never observes an `Err`), rather than being collected.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Spin-then-yield backoff, mirroring `crossbeam::utils::Backoff`.
pub mod utils {
    use std::cell::Cell;

    const SPIN_LIMIT: u32 = 6;

    /// Exponential backoff for spin loops.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Backoff {
        /// Creates a backoff in its initial (tightest) state.
        pub fn new() -> Self {
            Self::default()
        }

        /// Resets to the initial state after useful work was found.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Spins briefly.
        pub fn spin(&self) {
            for _ in 0..(1u32 << self.step.get().min(SPIN_LIMIT)) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Spins while young, yields the thread once the budget is spent.
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                self.spin();
            } else {
                std::thread::yield_now();
            }
        }

        /// True once spinning is no longer productive and the caller
        /// should consider parking.
        pub fn is_completed(&self) -> bool {
            self.step.get() > SPIN_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        crate::thread::scope(|s| {
            for x in &data {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(*x, std::sync::atomic::Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        crate::thread::scope(|s| {
            s.spawn(|inner| {
                hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                inner.spawn(|_| {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = crate::channel::unbounded::<usize>();
        crate::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        })
        .unwrap();
    }

    // The following tests pin the channel disconnect/iteration semantics
    // the skeleton runtimes (including the pool backend's farm fan-in)
    // rely on. If this shim ever diverges from upstream crossbeam on one
    // of these points, the divergence fails loudly here instead of
    // surfacing as a hung farm or a lost result.

    #[test]
    fn receiver_iter_ends_only_when_every_sender_is_dropped() {
        // The farm master's collect loop is `for x in rx.iter()`: it must
        // keep yielding while ANY worker still holds a sender, and end as
        // soon as the last one is gone.
        let (tx, rx) = crate::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn buffered_messages_survive_sender_disconnect() {
        // Workers may finish (dropping their senders) before the master
        // drains the channel; queued results must not be lost.
        let (tx, rx) = crate::channel::unbounded::<u32>();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.iter().collect::<Vec<u32>>(), vec![0, 1, 2, 3, 4]);
        // After the buffer is drained and all senders are gone, a blocking
        // recv reports disconnection rather than hanging.
        assert_eq!(rx.recv(), Err(crate::channel::RecvError));
    }

    #[test]
    fn send_to_a_dropped_receiver_fails_with_the_payload() {
        // Worker loops bail out with `if tx.send(..).is_err() { break }`;
        // the error must be observable (not a panic) and hand the value
        // back.
        let (tx, rx) = crate::channel::unbounded::<String>();
        drop(rx);
        let err = tx.send("orphan".to_string()).unwrap_err();
        assert_eq!(err.0, "orphan");
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(crate::channel::TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(
            rx.try_recv(),
            Err(crate::channel::TryRecvError::Disconnected)
        );
    }

    #[test]
    fn per_sender_fifo_order_is_preserved() {
        // scm/df masters rely on per-worker result batches arriving in
        // the order they were sent.
        let (tx, rx) = crate::channel::unbounded::<u32>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sender_cloned_into_threads_disconnects_when_all_finish() {
        // The exact fan-in shape of a pooled farm run: n workers with
        // cloned senders, master iterating until all are done.
        let (tx, rx) = crate::channel::unbounded::<usize>();
        crate::thread::scope(|s| {
            for i in 0..8 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for k in 0..10 {
                        tx.send(i * 10 + k).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..80).collect::<Vec<usize>>());
        })
        .unwrap();
    }

    #[test]
    fn backoff_completes() {
        let b = crate::utils::Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..16 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
