//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a std-only shim exposing the `rand` 0.8 API surface the SKiPPER
//! crates use: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges, and `Rng::gen_bool`.
//!
//! `StdRng` here is SplitMix64 — statistically far weaker than rand's
//! ChaCha-based generator, but deterministic, seedable, and more than
//! good enough for synthetic scenes, workload skew, and random DAGs.
//! Sequences differ from the real `rand` crate for the same seed.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                let v = (rng.next_u64() as u128) % (span as u128);
                ((start as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * (unit_f64(rng) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (Steele, Lea,
    /// Flood 2014). Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// The traits most callers want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-8i32..=8);
            assert!((-8..=8).contains(&v));
            let u = rng.gen_range(2usize..5);
            assert!((2..5).contains(&u));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..10_000 {
            match rng.gen_range(-2i32..=2) {
                -2 => lo = true,
                2 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi, "inclusive endpoints never sampled");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
