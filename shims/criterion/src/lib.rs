//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a std-only shim exposing the criterion API surface the SKiPPER
//! benches use: `Criterion`, benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — one warm-up iteration, then up to
//! `sample_size` timed iterations inside a wall-clock budget — and results
//! are printed as `name  ...  avg/iter` lines. No statistics, baselines,
//! or HTML reports. The point is that `cargo bench` compiles and runs the
//! bench suite end to end, so the benches cannot bit-rot.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 100;
/// Wall-clock budget per benchmark, so slow simulations keep CI fast.
const TIME_BUDGET: Duration = Duration::from_millis(500);

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b),
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group. (No summary statistics in this shim.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), param),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly (one warm-up, then timed iterations) and
    /// records the elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let deadline = Instant::now() + TIME_BUDGET;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.total += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, sample_size: usize, f: F) {
    let mut b = Bencher {
        sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no timed iterations)");
    } else {
        let avg = b.total / (b.iters as u32);
        println!("{name:<40} {avg:>12.3?} avg/iter over {} iters", b.iters);
    }
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut runs = 0u32;
        g.bench_function("counter", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        // one warm-up + up to ten timed iterations
        assert!((2..=11).contains(&runs), "ran {runs} times");
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("scm", 8).label, "scm/8");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }
}
